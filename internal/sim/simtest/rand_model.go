package simtest

import (
	"fmt"

	"pamigo/internal/sim"
	"pamigo/internal/sim/des"
)

// RandWorkload is a seeded random event DAG: Init root events land on
// random LPs at random (deliberately colliding) times, and every event
// forwards up to Fanout children to random LPs at adversarial delays —
// exact ties, zero delay (same-timestamp causal chains), one tick, and
// the full lookahead MaxDelay. All randomness derives from the event
// payload itself (a splitmix64 chain), never from shared RNG state, so a
// handler execution is a pure function of its event — the determinism
// the optimistic backend's re-executions rely on.
type RandWorkload struct {
	Seed     int64
	Init     int      // number of root events
	Depth    int      // max forwarding hops per root
	Fanout   int      // max children per event
	MaxDelay sim.Time // the "max-lookahead" adversarial delay
}

// DefaultRandWorkload is sized so a full run is a few thousand events:
// big enough to shake out interleavings, small enough to replay across
// many seeds and LP counts in one test.
func DefaultRandWorkload(seed int64) RandWorkload {
	return RandWorkload{Seed: seed, Init: 24, Depth: 6, Fanout: 2, MaxDelay: 500 * sim.Nanosecond}
}

// rmsg is the random DAG's event payload: remaining hop budget plus the
// rng word every downstream decision derives from.
type rmsg struct {
	Hops int32
	Tag  uint64
}

func (m rmsg) String() string { return fmt.Sprintf("h%d/%016x", m.Hops, m.Tag) }

// randModel is one instance of the workload's state: per-LP event
// counts and order-sensitive hashes (mutated optimistically, journaled),
// plus per-LP commit-order hashes (mutated only via Proc.Commit).
type randModel struct {
	w         RandWorkload
	lps       int
	counts    []uint64
	hashes    []uint64
	committed []uint64
}

// Build implements Workload.
func (w RandWorkload) Build(eng des.Engine) (des.Handler, func() string) {
	m := &randModel{
		w:         w,
		lps:       eng.LPs(),
		counts:    make([]uint64, eng.LPs()),
		hashes:    make([]uint64, eng.LPs()),
		committed: make([]uint64, eng.LPs()),
	}
	rng := uint64(w.Seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for i := 0; i < w.Init; i++ {
		rng = splitmix(rng)
		lp := int(rng % uint64(m.lps))
		rng = splitmix(rng)
		// Few distinct root times over many roots: dense cross-LP ties.
		at := sim.Time(rng%4) * 10 * sim.Nanosecond
		rng = splitmix(rng)
		eng.Post(lp, at, rmsg{Hops: int32(w.Depth), Tag: rng})
	}
	return m, m.output
}

// HandleEvent implements des.Handler. Every mutation of model state is
// journaled before it happens; the committed hash moves only through
// Commit.
func (m *randModel) HandleEvent(p des.Proc, msg des.Msg) {
	ev := msg.(rmsg)
	lp := p.LP()
	k := p.Key()

	oldCount, oldHash := m.counts[lp], m.hashes[lp]
	p.Journal(func() { m.counts[lp], m.hashes[lp] = oldCount, oldHash })
	stamp := mix(mix(ev.Tag, uint64(k.At)), uint64(k.Seq)<<16|uint64(k.Gen))
	m.counts[lp]++
	m.hashes[lp] = mix(m.hashes[lp], stamp)

	h := m.hashes[lp]
	p.Commit(func() { m.committed[lp] = mix(m.committed[lp], h) })

	if ev.Hops <= 0 {
		return
	}
	r := splitmix(ev.Tag)
	fanout := int(r % uint64(m.w.Fanout+1))
	for c := 0; c < fanout; c++ {
		r = splitmix(r)
		dst := int(r % uint64(m.lps))
		r = splitmix(r)
		at := p.Now() + m.delay(r)
		r = splitmix(r)
		p.Send(dst, at, rmsg{Hops: ev.Hops - 1, Tag: r})
	}
}

// delay picks an adversarial delay: mostly ties and zero-delay chains,
// with one tick and the full lookahead mixed in.
func (m *randModel) delay(r uint64) sim.Time {
	switch r % 8 {
	case 0, 1:
		return 0 // zero-delay: same-time causal chain across LPs
	case 2, 3:
		return 10 * sim.Nanosecond // collides with root-time grid: ties
	case 4:
		return sim.Time(1) // one picosecond tick
	case 5:
		return m.w.MaxDelay // max lookahead
	default:
		return sim.Time(r%977) * sim.Nanosecond
	}
}

func (m *randModel) output() string {
	var out string
	for lp := 0; lp < m.lps; lp++ {
		out += fmt.Sprintf("lp%d n=%d h=%016x c=%016x\n", lp, m.counts[lp], m.hashes[lp], m.committed[lp])
	}
	return out
}

// splitmix is splitmix64: the workload's only randomness primitive.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mix folds v into an order-sensitive hash h: mix(mix(h,a),b) differs
// from mix(mix(h,b),a), so the hash pins event execution order, not just
// the event multiset.
func mix(h, v uint64) uint64 {
	return splitmix(h ^ (v + 0x165667b19e3779f9))
}
