// Package simtest is the equivalence harness for the two discrete-event
// backends: it replays identical seeded workloads on the sequential
// oracle (des.Seq) and the optimistic Time Warp engine (warp.Engine) and
// asserts byte-identical committed event logs per LP and identical final
// model outputs. Time Warp's correctness claim — optimistic execution
// plus rollback is externally indistinguishable from sequential
// execution — is exactly this property, so the harness is the package
// the warp engine's tests, the netsim cross-engine suite, and the
// property-based random-DAG suite are all built on.
package simtest

import (
	"fmt"
	"strings"
	"testing"

	"pamigo/internal/sim"
	"pamigo/internal/sim/des"
	"pamigo/internal/sim/warp"
)

// Workload is one reproducible model run. Build posts the workload's
// initial events on eng and returns the event handler plus a function
// rendering the model's final output (called once, after Run). Build is
// called once per engine with a fresh model state each time.
type Workload interface {
	Build(eng des.Engine) (h des.Handler, output func() string)
}

// Result is everything observable from one run: the final simulated
// time, one committed-event log per LP (one "key msg" line per event, in
// commit order), and the model's own final output.
type Result struct {
	Final  sim.Time
	Logs   []string
	Output string
}

// String renders the result in the canonical comparable form.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "final %v\noutput %s\n", r.Final, r.Output)
	for lp, log := range r.Logs {
		fmt.Fprintf(&b, "-- lp %d --\n%s", lp, log)
	}
	return b.String()
}

// RunOn executes w on eng, capturing the per-LP committed event log.
func RunOn(eng des.Engine, w Workload) Result {
	h, output := w.Build(eng)
	logs := make([]strings.Builder, eng.LPs())
	// Observe fires concurrently across LPs on the warp backend; each LP
	// index is only ever touched by its owner goroutine.
	eng.Observe(func(lp int, k des.Key, m des.Msg) {
		fmt.Fprintf(&logs[lp], "%s %v\n", k, m)
	})
	final := eng.Run(h)
	res := Result{Final: final, Logs: make([]string, len(logs)), Output: output()}
	for i := range logs {
		res.Logs[i] = logs[i].String()
	}
	return res
}

// CheckEquivalence runs mk's workload on the sequential oracle and on
// the warp engine at each LP count and fails t on any divergence:
// different final time, different output, or a single byte of difference
// in any LP's committed event log. It also asserts warp's anti-message
// conservation law (every anti-message sent annihilated exactly one
// positive) and that optimistic execution committed exactly the oracle's
// event count.
//
// Comparisons are seq-vs-warp at the same LP count: event keys embed the
// sending LP, so different LP counts are different (each internally
// deterministic) workload placements, not comparable runs.
func CheckEquivalence(t testing.TB, mk func() Workload, opt warp.Options, lpCounts ...int) {
	t.Helper()
	for _, lps := range lpCounts {
		want := RunOn(des.NewSeq(lps), mk())
		weng := warp.New(lps, opt)
		got := RunOn(weng, mk())
		if ws, gs := want.String(), got.String(); ws != gs {
			t.Fatalf("lps=%d: warp diverged from sequential oracle\n--- oracle ---\n%s--- warp ---\n%s",
				lps, ws, gs)
		}
		st := weng.Stats()
		if st.AntisSent != st.Annihilated {
			t.Fatalf("lps=%d: %d anti-messages sent but %d annihilated — a cancellation was lost",
				lps, st.AntisSent, st.Annihilated)
		}
		var oracleEvents int64
		for _, log := range want.Logs {
			oracleEvents += int64(strings.Count(log, "\n"))
		}
		if st.Committed != oracleEvents {
			t.Fatalf("lps=%d: warp committed %d events, oracle ran %d", lps, st.Committed, oracleEvents)
		}
	}
}
