package simtest

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"pamigo/internal/fault"
	"pamigo/internal/sim"
	"pamigo/internal/sim/des"
	"pamigo/internal/sim/warp"
)

// TestRandomDAGEquivalence is the property-based core of the harness:
// for many seeds, a random event DAG full of adversarial timestamps —
// cross-LP ties, zero-delay same-time chains, max-lookahead jumps —
// must produce byte-identical committed logs and outputs on the warp
// engine and the sequential oracle at 1, 2, and 8 LPs. A small fossil
// threshold forces frequent GVT rounds and fossil collection mid-run.
func TestRandomDAGEquivalence(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := 0; seed < seeds; seed++ {
		mk := func() Workload { return DefaultRandWorkload(int64(seed)) }
		opt := warp.Options{FossilEvery: 64}
		if seed%2 == 1 {
			// Odd seeds run with a tight optimism window so the
			// window-blocked park/resume path is equivalence-checked too.
			opt.Window = 100 * sim.Nanosecond
		}
		CheckEquivalence(t, mk, opt, 1, 2, 8)
	}
}

// TestZeroDelayStorm hammers the nastiest corner alone: every delay is
// a tie or a zero-delay chain, so whole cascades execute inside single
// timestamps and ordering is carried entirely by the (Gen, Src, Seq)
// key fields.
func TestZeroDelayStorm(t *testing.T) {
	for seed := int64(100); seed < 104; seed++ {
		mk := func() Workload {
			return RandWorkload{Seed: seed, Init: 16, Depth: 8, Fanout: 2, MaxDelay: 0}
		}
		opt := warp.Options{FossilEvery: 32}
		if seed >= 102 {
			// A window of zero width (everything happens at GVT or on the
			// 10ns tie grid) is the degenerate throttling case: events
			// are only eligible exactly at the window edge.
			opt.Window = sim.Nanosecond
		}
		CheckEquivalence(t, mk, opt, 1, 2, 8)
	}
}

// chainWorkload is a deliberately rollback-heavy schedule. LP 1 runs a
// long self-send chain (t = 10ns, 20ns, ...), echoing every link to
// LP 2, which executes the echoes as they arrive. LP 0 holds one event
// at t = 0 that sends a straggler into the middle of LP 1's chain at
// t = 15ns. The test gates LP 0 (via warp.Options.PreExec) until LP 1
// and LP 2 have demonstrably raced far ahead, so on the warp engine the
// straggler is guaranteed to force a rollback on LP 1, a wave of
// anti-messages to LP 2, and secondary rollbacks of LP 2's already
// executed echoes — the aggressive-cancellation cascade.
type chainWorkload struct{ links int }

type cmsg struct {
	Kind string // "start", "link", "echo", "straggler"
	N    int32
}

func (w chainWorkload) Build(eng des.Engine) (des.Handler, func() string) {
	m := &chainModel{hashes: make([]uint64, eng.LPs()), links: w.links}
	eng.Post(0, 0, cmsg{Kind: "start"})
	eng.Post(1, 10*sim.Nanosecond, cmsg{Kind: "link", N: int32(w.links)})
	return m, m.output
}

type chainModel struct {
	links  int
	hashes []uint64
}

func (m *chainModel) HandleEvent(p des.Proc, msg des.Msg) {
	ev := msg.(cmsg)
	lp := p.LP()
	old := m.hashes[lp]
	p.Journal(func() { m.hashes[lp] = old })
	m.hashes[lp] = mix(m.hashes[lp], mix(uint64(p.Key().Seq)<<8|uint64(p.Key().Gen), uint64(ev.N)))
	switch ev.Kind {
	case "start":
		p.Send(1, 15*sim.Nanosecond, cmsg{Kind: "straggler"})
	case "link":
		if ev.N > 0 {
			p.Send(1, p.Now()+10*sim.Nanosecond, cmsg{Kind: "link", N: ev.N - 1})
		}
		p.Send(2, p.Now()+sim.Nanosecond, cmsg{Kind: "echo", N: ev.N})
	}
}

func (m *chainModel) output() string {
	var out string
	for lp, h := range m.hashes {
		out += string(rune('a'+lp)) + ":"
		for i := 60; i >= 0; i -= 4 {
			out += string("0123456789abcdef"[(h>>uint(i))&15])
		}
		out += "\n"
	}
	return out
}

func TestRollbackHeavySchedule(t *testing.T) {
	const links = 60
	mk := func() Workload { return chainWorkload{links: links} }
	want := RunOn(des.NewSeq(3), mk())

	var lp1, lp2 atomic.Int64
	opt := warp.Options{
		FossilEvery: 16,
		PreExec: func(lp int, k des.Key) {
			switch lp {
			case 1:
				lp1.Add(1)
			case 2:
				lp2.Add(1)
			case 0:
				// Hold LP 0's straggler source until the chain has raced
				// far past t=15ns on both downstream LPs.
				for lp1.Load() < 40 || lp2.Load() < 20 {
					time.Sleep(100 * time.Microsecond)
				}
			}
		},
	}
	weng := warp.New(3, opt)
	got := RunOn(weng, mk())
	if ws, gs := want.String(), got.String(); ws != gs {
		t.Fatalf("rollback-heavy run diverged from oracle\n--- oracle ---\n%s--- warp ---\n%s", ws, gs)
	}
	st := weng.Stats()
	if st.Rollbacks < 2 {
		t.Fatalf("gated straggler caused %d rollbacks, want the forced LP1+LP2 cascade (>=2); stats %+v", st.Rollbacks, st)
	}
	if st.AntisSent == 0 {
		t.Fatalf("rollback of echo-sending events sent no anti-messages; stats %+v", st)
	}
	if st.AntisSent != st.Annihilated {
		t.Fatalf("anti-messages did not fully cancel: sent %d, annihilated %d", st.AntisSent, st.Annihilated)
	}
}

// TestWarpStressRace shakes goroutine interleavings with seeded jitter
// injected into event execution, checks equivalence every round, and
// verifies the engine leaks no goroutines. Runtime is bounded: jitter
// sleeps are a few hundred microseconds and only hit 1 event in 32.
func TestWarpStressRace(t *testing.T) {
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	before := runtime.NumGoroutine()
	for seed := 0; seed < rounds; seed++ {
		mk := func() Workload {
			w := DefaultRandWorkload(int64(1000 + seed))
			w.Init = 12
			w.Depth = 5
			return w
		}
		var step atomic.Int64
		opt := warp.Options{
			FossilEvery: 48,
			PreExec: func(lp int, k des.Key) {
				s := step.Add(1)
				if s%32 == 0 {
					time.Sleep(fault.Jitter(int64(seed), s, 200*time.Microsecond))
				}
			},
		}
		CheckEquivalence(t, mk, opt, 2, 8)
	}
	// All LP and controller goroutines must have exited; poll briefly to
	// let the scheduler retire them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before stress, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSeqBackendMatchesItself pins the oracle's own determinism: two
// fresh runs of the same workload produce identical results.
func TestSeqBackendMatchesItself(t *testing.T) {
	mk := func() Workload { return DefaultRandWorkload(42) }
	a := RunOn(des.NewSeq(4), mk())
	b := RunOn(des.NewSeq(4), mk())
	if a.String() != b.String() {
		t.Fatalf("sequential backend is nondeterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
}
