package warp

import (
	"sync"
	"testing"

	"pamigo/internal/sim"
	"pamigo/internal/sim/des"
)

type handlerFunc func(p des.Proc, m des.Msg)

func (f handlerFunc) HandleEvent(p des.Proc, m des.Msg) { f(p, m) }

func TestEmptyRunTerminates(t *testing.T) {
	e := New(4, Options{})
	end := e.Run(handlerFunc(func(p des.Proc, m des.Msg) { t.Error("event on empty run") }))
	if end != 0 {
		t.Fatalf("empty run ended at %v, want 0", end)
	}
	if g := e.GVT(); g != des.TimeMax {
		t.Fatalf("GVT after termination = %v, want TimeMax", g)
	}
}

func TestSingleLPCommitsInKeyOrder(t *testing.T) {
	e := New(1, Options{})
	for _, at := range []sim.Time{30, 10, 20, 10, 0} {
		e.Post(0, at*sim.Nanosecond, int(at))
	}
	var got []des.Key
	e.Observe(func(lp int, k des.Key, m des.Msg) { got = append(got, k) })
	end := e.Run(handlerFunc(func(p des.Proc, m des.Msg) {}))
	if end != 30*sim.Nanosecond {
		t.Fatalf("end %v, want 30ns", end)
	}
	if len(got) != 5 {
		t.Fatalf("committed %d events, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !got[i-1].Less(got[i]) {
			t.Fatalf("commit order violates key order at %d: %v then %v", i, got[i-1], got[i])
		}
	}
	// Equal times tie-break on posting order (Seq field).
	if got[1].At != got[2].At || got[1].Seq > got[2].Seq {
		t.Fatalf("same-time posts out of post order: %v then %v", got[1], got[2])
	}
}

func TestFanInCommitsInKeyOrder(t *testing.T) {
	const lps = 8
	e := New(lps, Options{FossilEvery: 8})
	for lp := 1; lp < lps; lp++ {
		e.Post(lp, 0, "seed")
	}
	var mu sync.Mutex
	var lp0 []des.Key
	e.Observe(func(lp int, k des.Key, m des.Msg) {
		if lp == 0 {
			mu.Lock()
			lp0 = append(lp0, k)
			mu.Unlock()
		}
	})
	e.Run(handlerFunc(func(p des.Proc, m des.Msg) {
		if m == "seed" {
			// Every non-zero LP floods LP 0 at staggered and tied times.
			for i := 0; i < 20; i++ {
				p.Send(0, p.Now()+sim.Time(i%5)*sim.Nanosecond, p.LP()*100+i)
			}
		}
	}))
	if len(lp0) != (lps-1)*20 {
		t.Fatalf("LP0 committed %d events, want %d", len(lp0), (lps-1)*20)
	}
	for i := 1; i < len(lp0); i++ {
		if !lp0[i-1].Less(lp0[i]) {
			t.Fatalf("fan-in commit order broke at %d: %v then %v", i, lp0[i-1], lp0[i])
		}
	}
}

func TestCommitRunsExactlyOnceDespiteRollback(t *testing.T) {
	// LP1 races ahead on a chain; LP0's send lands as a straggler. The
	// rolled-back executions' Commit actions must never fire.
	gate := make(chan struct{})
	e := New(2, Options{
		FossilEvery: 4,
		PreExec: func(lp int, k des.Key) {
			if lp == 0 {
				<-gate
			}
		},
	})
	e.Post(0, 0, "straggle")
	e.Post(1, 10*sim.Nanosecond, 8)
	var mu sync.Mutex
	commits := map[string]int{}
	executed, released := 0, false
	e.Run(handlerFunc(func(p des.Proc, m des.Msg) {
		k := p.Key().String()
		p.Commit(func() {
			mu.Lock()
			commits[k]++
			mu.Unlock()
		})
		switch v := m.(type) {
		case string:
			p.Send(1, 15*sim.Nanosecond, -1)
		case int:
			mu.Lock()
			executed++
			if !released && executed >= 8 {
				// LP1 consumed its whole chain: release the straggler.
				released = true
				close(gate)
			}
			mu.Unlock()
			if v > 1 {
				p.Send(1, p.Now()+10*sim.Nanosecond, v-1)
			}
		}
	}))
	st := e.Stats()
	if st.Rollbacks == 0 {
		t.Fatalf("gated straggler rolled nothing back; stats %+v", st)
	}
	for k, n := range commits {
		if n != 1 {
			t.Fatalf("event %s committed %d times, want exactly once", k, n)
		}
	}
	if int64(len(commits)) != st.Committed {
		t.Fatalf("%d distinct commits vs %d committed events", len(commits), st.Committed)
	}
}

func TestPostValidation(t *testing.T) {
	e := New(2, Options{})
	mustPanic(t, "out-of-range LP", func() { e.Post(2, 0, nil) })
	mustPanic(t, "negative time", func() { e.Post(0, -1, nil) })
	e.Post(0, 0, nil)
	e.Run(handlerFunc(func(p des.Proc, m des.Msg) {
		mustPanic(t, "send into the past", func() { p.Send(0, p.Now()-1, nil) })
	}))
	mustPanic(t, "post after run", func() { e.Post(0, 0, nil) })
	mustPanic(t, "second run", func() { e.Run(handlerFunc(func(p des.Proc, m des.Msg) {})) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestGVTRoundFoldsMin(t *testing.T) {
	var r gvtRound
	r.begin(3)
	go r.stamp(30 * sim.Nanosecond)
	go r.stamp(10 * sim.Nanosecond)
	go r.stamp(20 * sim.Nanosecond)
	if min := r.wait(); min != 10*sim.Nanosecond {
		t.Fatalf("round min %v, want 10ns", min)
	}
	r.begin(2)
	go r.stamp(des.TimeMax)
	go r.stamp(des.TimeMax)
	if min := r.wait(); min != des.TimeMax {
		t.Fatalf("all-idle round min %v, want TimeMax", min)
	}
}
