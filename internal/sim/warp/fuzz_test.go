package warp

import (
	"sync"
	"testing"

	"pamigo/internal/sim"
	"pamigo/internal/sim/des"
)

// FuzzGVT fuzzes the GVT accumulator — the piece every correctness
// argument in this package leans on. Bytes drive a sequence of rounds:
// each round picks an LP count and per-LP floors (including TimeMax
// "idle" floors and adversarial duplicates), stamps them from concurrent
// goroutines, and requires wait to return exactly the minimum. A wrong
// min in either direction is fatal: too low stalls fossil collection
// forever, too high fossil-collects history a rollback still needs.
func FuzzGVT(f *testing.F) {
	f.Add([]byte{1, 0, 0})
	f.Add([]byte{7, 255, 255, 255, 255, 0, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{3, 9, 9, 9, 2, 200, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var r gvtRound
		for len(data) > 0 {
			n := int(data[0]%8) + 1
			data = data[1:]
			floors := make([]sim.Time, n)
			want := des.TimeMax
			for i := 0; i < n; i++ {
				floors[i] = des.TimeMax // parked LP: idle floor
				if len(data) > 0 {
					if b := data[0]; b != 255 {
						floors[i] = sim.Time(b) * sim.Nanosecond
					}
					data = data[1:]
				}
				if floors[i] < want {
					want = floors[i]
				}
			}
			r.begin(n)
			var wg sync.WaitGroup
			wg.Add(n)
			for _, fl := range floors {
				go func(fl sim.Time) {
					defer wg.Done()
					r.stamp(fl)
				}(fl)
			}
			got := r.wait()
			wg.Wait()
			if got != want {
				t.Fatalf("round over %v: GVT %v, want %v", floors, got, want)
			}
		}
	})
}

// FuzzGVT's companion: a whole-engine fuzz on tiny workloads, checking
// the engine always terminates with GVT at TimeMax and conserves
// anti-messages regardless of topology bytes.
func FuzzGVTEngine(f *testing.F) {
	f.Add([]byte{2, 3, 1, 4, 1, 5, 9, 2, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		lps := int(data[0]%4) + 1
		e := New(lps, Options{FossilEvery: 8})
		for i, b := range data[1:] {
			if i >= 16 {
				break
			}
			e.Post(int(b)%lps, sim.Time(b%7)*sim.Nanosecond, int(b))
		}
		e.Run(handlerFunc(func(p des.Proc, m des.Msg) {
			v := m.(int)
			if v > 2 {
				p.Send((p.LP()+v)%lps, p.Now()+sim.Time(v%3)*sim.Nanosecond, v/2)
			}
		}))
		if g := e.GVT(); g != des.TimeMax {
			t.Fatalf("engine terminated with GVT %v, want TimeMax", g)
		}
		st := e.Stats()
		if st.AntisSent != st.Annihilated {
			t.Fatalf("anti-message leak: sent %d annihilated %d", st.AntisSent, st.Annihilated)
		}
	})
}
