// Package warp is an optimistic parallel discrete-event engine — Time
// Warp (Jefferson) — implementing the des.Engine interface, so any model
// written against internal/sim/des runs on it unchanged and
// byte-equivalent to the sequential oracle (des.Seq).
//
// The event space is sharded over logical processes (LPs), one goroutine
// each. Every LP executes its pending events optimistically in Key order
// without global synchronization. Cross-LP sends are delivered
// synchronously into the destination's FIFO inbox; when a message
// arrives in an LP's processed past (a straggler), the LP rolls back:
// incremental state saving (per-event undo journals) restores model
// state, anti-messages cancel every event the rolled-back execution
// sent, and execution resumes from the straggler. Global Virtual Time —
// a lower bound below which no rollback can ever reach — is computed by
// pulse rounds that fold every LP's local floor into a shared atomic
// min; GVT drives fossil collection of rollback history and the release
// of committed side effects (des.Proc.Commit actions).
//
// See DESIGN.md "Time Warp invariants" for why the floor accounting and
// the fossil-collection horizon are safe.
package warp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pamigo/internal/sim"
	"pamigo/internal/sim/des"
)

// Options tune the engine; the zero value is ready to use.
type Options struct {
	// FossilEvery is the uncommitted-history length at which an LP
	// requests a GVT round so memory can be reclaimed. <= 0 means the
	// default (4096 events).
	FossilEvery int
	// Window, when > 0, bounds optimism (a moving time window): an LP
	// never executes an event later than GVT + Window, parking until a
	// GVT round moves the window forward. Unthrottled optimism can be
	// pathological — an LP that races far ahead gets its work rolled
	// back by every straggler, and on a loaded machine the wasted
	// re-execution can dwarf useful work. Progress is always preserved:
	// after every GVT round the LP holding the globally earliest event
	// is inside the window (its event time IS the new GVT). 0 disables
	// throttling.
	Window sim.Time
	// PreExec, when non-nil, is called on the owning LP goroutine
	// immediately before each optimistic event execution (including
	// re-executions after rollback). Test instrumentation only: the
	// equivalence suite uses it to force adversarial interleavings
	// (e.g. make one LP race ahead so a straggler must roll it back).
	PreExec func(lp int, k des.Key)
}

const defaultFossilEvery = 4096

// Stats are cumulative engine counters, readable after Run. All
// anti-messages sent must have annihilated a positive by the end of a
// run — the equivalence suite asserts AntisSent == Annihilated.
type Stats struct {
	// Executed counts optimistic event executions, including work that
	// was later rolled back.
	Executed int64
	// Committed counts events that survived to commit; equals the
	// sequential oracle's event count on the same workload.
	Committed int64
	// Rollbacks counts rollback episodes; RolledBack counts the event
	// executions they undid.
	Rollbacks  int64
	RolledBack int64
	// AntisSent counts anti-messages issued; Annihilated counts
	// positive events they cancelled (queued or already executed).
	AntisSent   int64
	Annihilated int64
	// GVTRounds counts completed GVT pulse rounds.
	GVTRounds int64
}

// Engine is the optimistic backend. Create with New, drive through the
// des.Engine interface.
type Engine struct {
	nlps    int
	opt     Options
	h       des.Handler
	obs     func(lp int, k des.Key, m des.Msg)
	lps     []*lp
	postSeq uint64
	ran     bool

	pulse    atomic.Uint64 // current GVT pulse number; LPs stamp once per pulse
	round    gvtRound      // accumulator for the in-flight pulse
	pulseReq chan struct{} // buffered(1): coalesced pulse requests
	gvt      atomic.Int64  // published GVT (sim.Time); minInt64 until first round
	idle     atomic.Int32  // LPs currently parked
	done     atomic.Bool   // termination: set once GVT reaches +inf
	end      atomic.Int64  // max committed event time

	executed    atomic.Int64
	committed   atomic.Int64
	rollbacks   atomic.Int64
	rolledBack  atomic.Int64
	antisSent   atomic.Int64
	annihilated atomic.Int64
	gvtRounds   atomic.Int64
}

// New builds an optimistic engine with lps logical processes.
func New(lps int, opt Options) *Engine {
	if lps < 1 {
		panic("warp: need at least 1 LP")
	}
	if opt.FossilEvery <= 0 {
		opt.FossilEvery = defaultFossilEvery
	}
	e := &Engine{
		nlps:     lps,
		opt:      opt,
		pulseReq: make(chan struct{}, 1),
	}
	e.gvt.Store(int64(minTime))
	e.lps = make([]*lp, lps)
	for i := range e.lps {
		l := &lp{e: e, id: i, sendMin: des.TimeMax}
		l.cond = sync.NewCond(&l.mu)
		e.lps[i] = l
	}
	return e
}

const minTime = sim.Time(-1 << 63)

// LPs implements des.Engine.
func (e *Engine) LPs() int { return e.nlps }

// Observe implements des.Engine. The hook runs on LP goroutines as
// events commit (fossil collection and final flush), in Key order per
// LP, concurrently across LPs.
func (e *Engine) Observe(fn func(lp int, k des.Key, m des.Msg)) { e.obs = fn }

// Post implements des.Engine. Not safe for concurrent use; call before Run.
func (e *Engine) Post(lp int, at sim.Time, m des.Msg) {
	if e.ran {
		panic("warp: Post after Run")
	}
	if lp < 0 || lp >= e.nlps {
		panic(fmt.Sprintf("warp: LP %d out of range [0,%d)", lp, e.nlps))
	}
	if at < 0 {
		panic("warp: Post before time zero")
	}
	e.postSeq++
	e.lps[lp].pending.Push(des.Item{
		Key: des.Key{At: at, Src: -1, Seq: e.postSeq},
		LP:  int32(lp),
		Msg: m,
	})
}

// Run implements des.Engine: spawns one goroutine per LP plus the GVT
// controller, executes until every LP is drained, and returns the
// largest committed event time. All Commit actions and Observe calls
// happen before Run returns.
func (e *Engine) Run(h des.Handler) sim.Time {
	if e.ran {
		panic("warp: Run called twice")
	}
	e.ran = true
	e.h = h
	var wg sync.WaitGroup
	wg.Add(e.nlps)
	for _, l := range e.lps {
		go l.run(&wg)
	}
	ctl := make(chan struct{})
	go func() {
		defer close(ctl)
		e.controller()
	}()
	wg.Wait()
	<-ctl
	return sim.Time(e.end.Load())
}

// Stats returns the engine's cumulative counters. Call after Run.
func (e *Engine) Stats() Stats {
	return Stats{
		Executed:    e.executed.Load(),
		Committed:   e.committed.Load(),
		Rollbacks:   e.rollbacks.Load(),
		RolledBack:  e.rolledBack.Load(),
		AntisSent:   e.antisSent.Load(),
		Annihilated: e.annihilated.Load(),
		GVTRounds:   e.gvtRounds.Load(),
	}
}

// GVT returns the engine's published Global Virtual Time.
func (e *Engine) GVT() sim.Time { return sim.Time(e.gvt.Load()) }

func (e *Engine) requestPulse() {
	select {
	case e.pulseReq <- struct{}{}:
	default:
	}
}

// controller serializes GVT rounds: on request it begins a round, wakes
// every LP to stamp its floor, folds the stamps into the shared atomic
// min, and publishes the result. A round that reports +inf means no LP
// holds or can ever create another event — termination.
func (e *Engine) controller() {
	for range e.pulseReq {
		if e.done.Load() {
			return
		}
		e.round.begin(e.nlps)
		e.pulse.Add(1)
		e.wakeAll()
		min := e.round.wait()
		e.gvtRounds.Add(1)
		if min == des.TimeMax {
			e.gvt.Store(int64(des.TimeMax))
			e.done.Store(true)
			e.wakeAll()
			return
		}
		// GVT is monotone; a round can only raise it (see DESIGN.md).
		if cur := sim.Time(e.gvt.Load()); min > cur {
			e.gvt.Store(int64(min))
		}
		// Wake everyone: the new GVT unblocks fossil collection and
		// moves the optimism window forward.
		e.wakeAll()
	}
}

func (e *Engine) wakeAll() {
	for _, l := range e.lps {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// insert is one queued delivery: a positive event or an anti-message
// (matched by Key; an anti's Msg is nil).
type insert struct {
	it   des.Item
	anti bool
}

// sentRef remembers one send so rollback can cancel it.
type sentRef struct {
	dst int32
	key des.Key
}

// record is one optimistically executed event: everything needed to
// unwind it (incremental state saving) or to commit it.
type record struct {
	it        des.Item
	undo      []func()
	sent      []sentRef
	commits   []func()
	seqBefore uint64  // send counter before execution, restored on rollback
	prevKey   des.Key // lastKey before execution, restored on rollback
	prevHave  bool
}

// lp is one logical process. The inbox (and cond) is the only state
// other goroutines touch; pending, recs and the execution context are
// owner-only.
type lp struct {
	e  *Engine
	id int

	mu    sync.Mutex
	cond  *sync.Cond
	inbox []insert

	// owner-only state
	pending  des.Heap // unprocessed events, min = next to execute
	recs     []record // processed, uncommitted history in Key order
	lastKey  des.Key  // key of the most recent processed event
	haveLast bool
	sendSeq  uint64
	sendMin  sim.Time // min time of sends (incl. antis) since last stamp
	stamped  uint64   // pulse number of the LP's latest stamp
	cur      *record  // record of the event currently executing
	maxDone  sim.Time // largest committed event time on this LP
}

// deliver enqueues in on l's inbox; callable from any goroutine.
func (l *lp) deliver(in insert) {
	l.mu.Lock()
	l.inbox = append(l.inbox, in)
	l.cond.Signal()
	l.mu.Unlock()
}

// run is the LP main loop: drain inbox (annihilate / roll back /
// enqueue), stamp GVT pulses, fossil-collect, execute the next pending
// event — or park when idle.
func (l *lp) run(wg *sync.WaitGroup) {
	defer wg.Done()
	e := l.e
	var batch []insert
	for {
		l.mu.Lock()
		for len(l.inbox) == 0 && !l.execReady() &&
			!e.done.Load() && e.pulse.Load() == l.stamped {
			if e.idle.Add(1) == int32(e.nlps) {
				// Everyone is parked — drained or window-blocked — and no
				// handler is running, so no message is in flight: ask the
				// controller to run a round. If all floors are +inf it
				// terminates us; otherwise the raised GVT moves the
				// optimism window and the controller wakes us again.
				e.requestPulse()
			}
			l.cond.Wait()
			e.idle.Add(-1)
		}
		batch, l.inbox = l.inbox, batch[:0]
		l.mu.Unlock()

		if e.done.Load() {
			l.flush()
			return
		}
		for _, in := range batch {
			l.apply(in)
		}
		if ps := e.pulse.Load(); ps != l.stamped {
			l.stamp(ps)
		}
		if g := sim.Time(e.gvt.Load()); g > minTime {
			l.fossil(g)
		}
		if !l.execReady() {
			continue
		}
		l.exec(l.pending.Pop())
		if len(l.recs) >= e.opt.FossilEvery {
			e.requestPulse()
		}
	}
}

// execReady reports whether the earliest pending event may be executed
// now. With no optimism window that means "pending is non-empty"; with
// one, the event must also lie within GVT + Window. Progress is
// guaranteed: a GVT round folds every LP's pending floor, so the LP
// holding the globally earliest event always finds it at exactly the
// new GVT, inside any window >= 0.
func (l *lp) execReady() bool {
	if l.pending.Len() == 0 {
		return false
	}
	w := l.e.opt.Window
	if w <= 0 {
		return true
	}
	g := sim.Time(l.e.gvt.Load())
	if g == minTime {
		// Bootstrap: block until the first round publishes a real GVT,
		// so the window has an anchor.
		return false
	}
	limit := g + w
	if limit < g { // saturate on overflow
		limit = des.TimeMax
	}
	return l.pending.Min().Key.At <= limit
}

// stamp publishes this LP's GVT floor for pulse ps: the earliest event
// it still holds, folded with the earliest message it sent since its
// previous stamp. The send-min term is what keeps the non-blocking cut
// consistent: a message this LP put in someone else's inbox after that
// inbox was stamped is still covered here, because the sender always
// stamps after the insertion it performed.
func (l *lp) stamp(ps uint64) {
	floor := l.sendMin
	if l.pending.Len() > 0 {
		if at := l.pending.Min().Key.At; at < floor {
			floor = at
		}
	}
	l.sendMin = des.TimeMax
	l.stamped = ps
	l.e.round.stamp(floor)
}

// apply processes one inbox delivery in FIFO order.
func (l *lp) apply(in insert) {
	k := in.it.Key
	if in.anti {
		l.e.annihilated.Add(1)
		if l.haveLast && !l.lastKey.Less(k) {
			// The positive was already executed: unwind everything after
			// it, then unwind and discard the positive itself.
			l.rollback(k)
			n := len(l.recs) - 1
			if n < 0 || l.recs[n].it.Key != k {
				panic("warp: anti-message for an unknown executed event")
			}
			rec := l.recs[n]
			l.recs = l.recs[:n]
			l.e.rollbacks.Add(1)
			l.e.rolledBack.Add(1)
			l.unwind(rec)
			return
		}
		if !l.pending.Remove(k) {
			panic("warp: anti-message with no matching positive")
		}
		return
	}
	if l.haveLast && k.Less(l.lastKey) {
		// Straggler: restore the past before admitting it.
		l.e.rollbacks.Add(1)
		l.rollback(k)
	}
	l.pending.Push(in.it)
}

// rollback unwinds every executed record with key strictly greater than
// k, re-enqueueing the unwound events for re-execution.
func (l *lp) rollback(k des.Key) {
	for n := len(l.recs); n > 0; n = len(l.recs) {
		rec := l.recs[n-1]
		if !k.Less(rec.it.Key) {
			return
		}
		l.recs = l.recs[:n-1]
		l.e.rolledBack.Add(1)
		l.unwind(rec)
		l.pending.Push(rec.it)
	}
}

// unwind reverses one record: undo journal in reverse, anti-messages for
// every send, send counter and last-key restoration. Anti-message times
// fold into sendMin — a cancellation is a message too, and GVT floors
// must cover it.
func (l *lp) unwind(rec record) {
	for i := len(rec.undo) - 1; i >= 0; i-- {
		rec.undo[i]()
	}
	for i := len(rec.sent) - 1; i >= 0; i-- {
		s := rec.sent[i]
		if s.key.At < l.sendMin {
			l.sendMin = s.key.At
		}
		l.e.antisSent.Add(1)
		l.e.lps[s.dst].deliver(insert{it: des.Item{Key: s.key, LP: s.dst}, anti: true})
	}
	l.sendSeq = rec.seqBefore
	l.lastKey, l.haveLast = rec.prevKey, rec.prevHave
}

// exec optimistically executes one event, recording everything needed to
// unwind it.
func (l *lp) exec(it des.Item) {
	e := l.e
	if e.opt.PreExec != nil {
		e.opt.PreExec(l.id, it.Key)
	}
	e.executed.Add(1)
	l.recs = append(l.recs, record{
		it:        it,
		seqBefore: l.sendSeq,
		prevKey:   l.lastKey,
		prevHave:  l.haveLast,
	})
	l.cur = &l.recs[len(l.recs)-1]
	l.lastKey, l.haveLast = it.Key, true
	e.h.HandleEvent(l, it.Msg)
	l.cur = nil
}

// fossil commits and discards history strictly below the GVT horizon g.
// Events at exactly g must stay: a zero-delay send from another LP's
// event at g can still arrive — and roll back — at time g.
func (l *lp) fossil(g sim.Time) {
	n := 0
	for n < len(l.recs) && l.recs[n].it.Key.At < g {
		n++
	}
	if n == 0 {
		return
	}
	l.commit(l.recs[:n])
	rest := copy(l.recs, l.recs[n:])
	// Zero the freed tail so committed journals/payloads can be GC'd.
	for i := rest; i < len(l.recs); i++ {
		l.recs[i] = record{}
	}
	l.recs = l.recs[:rest]
}

// flush commits whatever history remains at termination (GVT = +inf).
func (l *lp) flush() {
	l.commit(l.recs)
	l.recs = nil
	for {
		cur := l.e.end.Load()
		if int64(l.maxDone) <= cur || l.e.end.CompareAndSwap(cur, int64(l.maxDone)) {
			return
		}
	}
}

func (l *lp) commit(recs []record) {
	e := l.e
	for i := range recs {
		rec := &recs[i]
		e.committed.Add(1)
		if e.obs != nil {
			e.obs(l.id, rec.it.Key, rec.it.Msg)
		}
		for _, act := range rec.commits {
			act()
		}
		if rec.it.Key.At > l.maxDone {
			l.maxDone = rec.it.Key.At
		}
	}
}

// --- des.Proc implementation (valid only during exec) ---

// Now implements des.Proc.
func (l *lp) Now() sim.Time { return l.cur.it.Key.At }

// LP implements des.Proc.
func (l *lp) LP() int { return l.id }

// Key implements des.Proc.
func (l *lp) Key() des.Key { return l.cur.it.Key }

// Send implements des.Proc. Every send — self included — goes through
// the destination inbox, so positives and the anti-messages that may
// later chase them share one FIFO and cancellation can never pass its
// target.
func (l *lp) Send(lp int, at sim.Time, m des.Msg) {
	cur := l.cur
	if cur == nil {
		panic("warp: Send outside event execution")
	}
	if lp < 0 || lp >= l.e.nlps {
		panic(fmt.Sprintf("warp: LP %d out of range [0,%d)", lp, l.e.nlps))
	}
	now := cur.it.Key.At
	if at < now {
		panic(fmt.Sprintf("warp: send at %v before now %v", at, now))
	}
	var gen uint32
	if at == now {
		gen = cur.it.Key.Gen + 1
	}
	l.sendSeq++
	k := des.Key{At: at, Gen: gen, Src: int32(l.id), Seq: l.sendSeq}
	if at < l.sendMin {
		l.sendMin = at
	}
	cur.sent = append(cur.sent, sentRef{dst: int32(lp), key: k})
	l.e.lps[lp].deliver(insert{it: des.Item{Key: k, LP: int32(lp), Msg: m}})
}

// Journal implements des.Proc.
func (l *lp) Journal(undo func()) {
	if l.cur == nil {
		panic("warp: Journal outside event execution")
	}
	l.cur.undo = append(l.cur.undo, undo)
}

// Commit implements des.Proc.
func (l *lp) Commit(act func()) {
	if l.cur == nil {
		panic("warp: Commit outside event execution")
	}
	l.cur.commits = append(l.cur.commits, act)
}
