package warp

import (
	"sync/atomic"

	"pamigo/internal/sim"
	"pamigo/internal/sim/des"
)

// gvtRound folds per-LP virtual-time floors into a Global Virtual Time
// estimate via a shared atomic min — the flat-shared-memory equivalent
// of a Mattern token ring. One round = one pulse: the controller calls
// begin, every LP contributes exactly one stamp, wait returns the min.
//
// Soundness (see DESIGN.md "Time Warp invariants" for the full
// argument): each LP's stamp is
//
//	min(earliest pending event, earliest send since the LP's previous
//	    stamp — anti-messages included)
//
// taken after the LP drained its inbox. Any message not yet reflected
// in its receiver's pending queue when the receiver stamped was sent by
// an LP that either had not stamped this round (so the send lands in
// that sender's sendMin) or was executing an event that was in its own
// pending queue when it stamped (so the round min already lower-bounds
// the send time). Either way the returned min is a true lower bound on
// every event and message in the system, so nothing below it can ever
// be rolled back.
type gvtRound struct {
	min       atomic.Int64
	remaining atomic.Int32
	done      chan struct{}
}

// begin arms the round for n stamps. Caller (the controller) must
// publish the new pulse number after begin returns; LPs stamp only
// after observing the new pulse, which orders begin's writes before any
// stamp.
func (r *gvtRound) begin(n int) {
	r.min.Store(int64(des.TimeMax))
	r.remaining.Store(int32(n))
	r.done = make(chan struct{})
}

// stamp folds one LP floor into the round. The n-th stamp completes the
// round and releases wait. Callable from any LP goroutine, once per LP
// per round.
func (r *gvtRound) stamp(floor sim.Time) {
	for {
		cur := r.min.Load()
		if int64(floor) >= cur || r.min.CompareAndSwap(cur, int64(floor)) {
			break
		}
	}
	if r.remaining.Add(-1) == 0 {
		close(r.done)
	}
}

// wait blocks until all n stamps arrived and returns the folded min.
func (r *gvtRound) wait() sim.Time {
	<-r.done
	return sim.Time(r.min.Load())
}
