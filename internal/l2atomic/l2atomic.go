// Package l2atomic models the Blue Gene/Q L2-cache atomic unit.
//
// On BG/Q every 8-byte-aligned word of DDR memory can be accessed through
// special alias addresses that make the L2 cache perform an atomic
// read-modify-write on the word: load-increment, load-decrement, load-clear,
// store-add, store-max and, most importantly for messaging, the *bounded*
// load-increment that underpins the PAMI lockless queues (paper §II.A,
// §III.B). The unit is scalable: each additional concurrent request costs
// only a few cycles, which is why PAMI prefers it over conventional mutexes
// for every hot-path counter and queue.
//
// This package reproduces those primitives on top of sync/atomic with the
// same semantics. A Counter is the software stand-in for one such 8-byte
// word; Mutex and Barrier are the two higher-level constructs the paper
// builds directly from L2 atomics (the "low overhead L2 atomic mutex" that
// serializes the MPI receive queue, and the intra-node barrier used by
// MPI_Barrier at PPN>1).
package l2atomic

import (
	"runtime"
	"sync/atomic"
)

// Counter is one 8-byte word accessible through the L2 atomic unit.
// The zero value is a counter with value 0, ready to use.
type Counter struct {
	v atomic.Int64
}

// Load returns the current value of the word.
func (c *Counter) Load() int64 { return c.v.Load() }

// Store overwrites the word.
func (c *Counter) Store(v int64) { c.v.Store(v) }

// LoadIncrement atomically increments the word and returns the value it
// held *before* the increment (the BG/Q "load increment" opcode).
func (c *Counter) LoadIncrement() int64 { return c.v.Add(1) - 1 }

// LoadDecrement atomically decrements the word and returns the value it
// held before the decrement.
func (c *Counter) LoadDecrement() int64 { return c.v.Add(-1) + 1 }

// LoadAdd atomically adds delta to the word and returns the value it
// held before the addition — the batched form of LoadIncrement. The real
// L2 unit only increments by one, but a delta-sized claim is exactly a
// run of load-increments issued back to back by one thread; the lockless
// queues use it to allocate a ticket *range* in a single operation.
func (c *Counter) LoadAdd(delta int64) int64 { return c.v.Add(delta) - delta }

// LoadClear atomically sets the word to zero and returns its prior value.
func (c *Counter) LoadClear() int64 { return c.v.Swap(0) }

// StoreAdd atomically adds delta to the word without returning a result
// (the store-variant opcodes complete without a round trip to the core).
func (c *Counter) StoreAdd(delta int64) { c.v.Add(delta) }

// StoreMax atomically stores max(current, v) into the word.
func (c *Counter) StoreMax(v int64) {
	for {
		cur := c.v.Load()
		if v <= cur || c.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// CompareAndSwap performs a conventional CAS on the word. The real L2
// atomic unit does not implement CAS — BG/Q software avoids it — but the
// model package and tests use it to build reference implementations.
func (c *Counter) CompareAndSwap(old, new int64) bool {
	return c.v.CompareAndSwap(old, new)
}

// LoadIncrementBounded atomically increments the word only if its current
// value is strictly below bound. It returns the prior value and whether the
// increment happened. This is the BG/Q "bounded increment" operation the
// paper singles out (§III.B): it lets producers atomically allocate a slot
// in a fixed-size array and discover, in the same atomic operation, that the
// array is full.
func (c *Counter) LoadIncrementBounded(bound int64) (old int64, ok bool) {
	for {
		cur := c.v.Load()
		if cur >= bound {
			return cur, false
		}
		if c.v.CompareAndSwap(cur, cur+1) {
			return cur, true
		}
	}
}

// Mutex is the "low overhead L2 atomic mutex" (paper §IV.A): a ticket lock
// built from two L2 counters. Tickets make it fair under the heavy
// multi-producer contention of the MPI receive queue. The zero value is an
// unlocked mutex.
type Mutex struct {
	next    Counter
	serving Counter
}

// Lock acquires the mutex, spinning with progressively friendlier backoff.
func (m *Mutex) Lock() {
	t := m.next.LoadIncrement()
	for spins := 0; m.serving.Load() != t; spins++ {
		if spins < 16 {
			continue // brief busy wait: L2 atomics resolve in tens of cycles
		}
		runtime.Gosched()
	}
}

// TryLock acquires the mutex only if it is free, returning whether it did.
func (m *Mutex) TryLock() bool {
	cur := m.serving.Load()
	// Take the next ticket only if it would be served immediately, i.e. the
	// ticket counter still equals the serving counter. The bounded increment
	// refuses the ticket when another thread already holds or awaits one.
	if old, ok := m.next.LoadIncrementBounded(cur + 1); ok && old == cur {
		return true
	}
	return false
}

// Unlock releases the mutex. It must only be called by the holder.
func (m *Mutex) Unlock() {
	m.serving.StoreAdd(1)
}

// Barrier is an intra-node sense-reversing barrier built on a single L2
// load-increment counter, as used by the PAMI local barrier at PPN>1
// (paper §IV.B: "the local barrier is implemented via the scalable L2
// atomic increment operation").
type Barrier struct {
	parties int64
	count   Counter
	sense   Counter // generation number, bumped by the last arriver
}

// NewBarrier returns a barrier for the given number of participants.
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		panic("l2atomic: barrier needs at least one party")
	}
	return &Barrier{parties: int64(parties)}
}

// Parties returns the number of participants the barrier waits for.
func (b *Barrier) Parties() int { return int(b.parties) }

// Await blocks until all parties have called Await for the current
// generation. It is safe to reuse the barrier for successive generations.
func (b *Barrier) Await() {
	gen := b.sense.Load()
	if b.count.LoadIncrement() == b.parties-1 {
		// Last arriver: reset the count and release the generation.
		b.count.Store(0)
		b.sense.StoreAdd(1)
		return
	}
	for spins := 0; b.sense.Load() == gen; spins++ {
		if spins > 64 {
			runtime.Gosched()
		}
	}
}
