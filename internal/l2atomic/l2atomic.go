// Package l2atomic models the Blue Gene/Q L2-cache atomic unit.
//
// On BG/Q every 8-byte-aligned word of DDR memory can be accessed through
// special alias addresses that make the L2 cache perform an atomic
// read-modify-write on the word: load-increment, load-decrement, load-clear,
// store-add, store-max and, most importantly for messaging, the *bounded*
// load-increment that underpins the PAMI lockless queues (paper §II.A,
// §III.B). The unit is scalable: each additional concurrent request costs
// only a few cycles, which is why PAMI prefers it over conventional mutexes
// for every hot-path counter and queue.
//
// This package reproduces those primitives on top of sync/atomic with the
// same semantics. A Counter is the software stand-in for one such 8-byte
// word; Mutex and Barrier are the two higher-level constructs the paper
// builds directly from L2 atomics (the "low overhead L2 atomic mutex" that
// serializes the MPI receive queue, and the intra-node barrier used by
// MPI_Barrier at PPN>1).
package l2atomic

import (
	"runtime"
	"sync/atomic"
)

// Counter is one 8-byte word accessible through the L2 atomic unit.
// The zero value is a counter with value 0, ready to use.
type Counter struct {
	v atomic.Int64
}

// Load returns the current value of the word.
func (c *Counter) Load() int64 { return c.v.Load() }

// Store overwrites the word.
func (c *Counter) Store(v int64) { c.v.Store(v) }

// LoadIncrement atomically increments the word and returns the value it
// held *before* the increment (the BG/Q "load increment" opcode).
func (c *Counter) LoadIncrement() int64 { return c.v.Add(1) - 1 }

// LoadDecrement atomically decrements the word and returns the value it
// held before the decrement.
func (c *Counter) LoadDecrement() int64 { return c.v.Add(-1) + 1 }

// LoadAdd atomically adds delta to the word and returns the value it
// held before the addition — the batched form of LoadIncrement. The real
// L2 unit only increments by one, but a delta-sized claim is exactly a
// run of load-increments issued back to back by one thread; the lockless
// queues use it to allocate a ticket *range* in a single operation.
func (c *Counter) LoadAdd(delta int64) int64 { return c.v.Add(delta) - delta }

// LoadClear atomically sets the word to zero and returns its prior value.
func (c *Counter) LoadClear() int64 { return c.v.Swap(0) }

// StoreAdd atomically adds delta to the word without returning a result
// (the store-variant opcodes complete without a round trip to the core).
func (c *Counter) StoreAdd(delta int64) { c.v.Add(delta) }

// StoreMax atomically stores max(current, v) into the word.
func (c *Counter) StoreMax(v int64) {
	for {
		cur := c.v.Load()
		if v <= cur || c.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// CompareAndSwap performs a conventional CAS on the word. The real L2
// atomic unit does not implement CAS — BG/Q software avoids it — but the
// model package and tests use it to build reference implementations.
func (c *Counter) CompareAndSwap(old, new int64) bool {
	return c.v.CompareAndSwap(old, new)
}

// LoadIncrementBounded atomically increments the word only if its current
// value is strictly below bound. It returns the prior value and whether the
// increment happened. This is the BG/Q "bounded increment" operation the
// paper singles out (§III.B): it lets producers atomically allocate a slot
// in a fixed-size array and discover, in the same atomic operation, that the
// array is full.
func (c *Counter) LoadIncrementBounded(bound int64) (old int64, ok bool) {
	for {
		cur := c.v.Load()
		if cur >= bound {
			return cur, false
		}
		if c.v.CompareAndSwap(cur, cur+1) {
			return cur, true
		}
	}
}

// Mutex is the "low overhead L2 atomic mutex" (paper §IV.A): a ticket lock
// built from two L2 counters. Tickets make it fair under the heavy
// multi-producer contention of the MPI receive queue. The zero value is an
// unlocked mutex.
type Mutex struct {
	next    Counter
	serving Counter
}

// Lock acquires the mutex, spinning with progressively friendlier backoff.
func (m *Mutex) Lock() {
	t := m.next.LoadIncrement()
	for spins := 0; m.serving.Load() != t; spins++ {
		if spins < 16 {
			continue // brief busy wait: L2 atomics resolve in tens of cycles
		}
		runtime.Gosched()
	}
}

// TryLock acquires the mutex only if it is free, returning whether it did.
func (m *Mutex) TryLock() bool {
	cur := m.serving.Load()
	// Take the next ticket only if it would be served immediately, i.e. the
	// ticket counter still equals the serving counter. The bounded increment
	// refuses the ticket when another thread already holds or awaits one.
	if old, ok := m.next.LoadIncrementBounded(cur + 1); ok && old == cur {
		return true
	}
	return false
}

// Unlock releases the mutex. It must only be called by the holder.
func (m *Mutex) Unlock() {
	m.serving.StoreAdd(1)
}

// Barrier is an intra-node sense-reversing barrier built on a single L2
// word, as used by the PAMI local barrier at PPN>1 (paper §IV.B: "the
// local barrier is implemented via the scalable L2 atomic increment
// operation").
//
// Beyond the paper, the barrier is *poisonable*: on hardware that can
// lose a participant mid-collective (a SIGKILLed node-mate, a confirmed
// peer death), a party that will never arrive must not strand the ones
// already parked. Poison(err) releases every parked party with the
// typed error, makes every subsequent Await fail fast with it, and
// stays sticky until Heal() — called at a point where the survivors
// have re-synchronized (e.g. after machine.Revive restored the
// membership) — returns the barrier to normal service. The whole state
// (generation, poison flag, arrival count) lives in one word updated by
// CAS, so a poison cannot race an arrival into a lost count.
type Barrier struct {
	parties int64
	state   Counter // packed: generation<<32 | poisonBit | count
	// spinners counts parties physically inside Await. Heal drains it to
	// zero before clearing the poison bit, so no party can sleep through
	// a poison+heal cycle and wrongly observe success — while any party
	// is mid-protocol, at most one poison cycle can be live.
	spinners Counter
	perr     atomic.Pointer[barrierPoison]
}

// barrierPoison records a poison cause and the generation it struck.
// The cell is published *before* the poison bit becomes visible, so any
// party that observes the bit also observes a cell at least as new:
// parked parties compare gens to tell "my generation was poisoned"
// (error) from "my generation completed and a later one was poisoned"
// (success).
type barrierPoison struct {
	gen int64
	err error
}

const (
	barrierPoisonBit = int64(1) << 31
	barrierCountMask = barrierPoisonBit - 1
	barrierGenShift  = 32
)

// NewBarrier returns a barrier for the given number of participants.
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		panic("l2atomic: barrier needs at least one party")
	}
	if int64(parties) > barrierCountMask {
		panic("l2atomic: barrier party count does not fit the packed state word")
	}
	return &Barrier{parties: int64(parties)}
}

// Parties returns the number of participants the barrier waits for.
func (b *Barrier) Parties() int { return int(b.parties) }

// Await blocks until all parties have called Await for the current
// generation, returning nil, or until the barrier is poisoned,
// returning the poison error (for parked parties and arrivals alike).
// It is safe to reuse the barrier for successive generations.
func (b *Barrier) Await() error {
	// Register as in-protocol for the whole call: Heal cannot retire a
	// poison cycle while any party is between its state loads, so the
	// gen-stamped poison cell each party consults is never recycled
	// under it.
	b.spinners.StoreAdd(1)
	defer b.spinners.StoreAdd(-1)
	for {
		s := b.state.Load()
		if s&barrierPoisonBit != 0 {
			return b.poisonErr()
		}
		gen := s >> barrierGenShift
		cnt := s & barrierCountMask
		if cnt == b.parties-1 {
			// Last arriver: one CAS resets the count and releases the
			// generation. A racing Poison makes the CAS fail and the
			// reload observe the bit.
			if b.state.CompareAndSwap(s, (gen+1)<<barrierGenShift) {
				return nil
			}
			continue
		}
		if !b.state.CompareAndSwap(s, s+1) {
			continue
		}
		for spins := 0; ; spins++ {
			s2 := b.state.Load()
			if s2&barrierPoisonBit != 0 {
				// Released by a poison's gen bump — but possibly our
				// generation completed first and the poison struck a later
				// one. The cell's gen stamp tells the two apart.
				if p := b.perr.Load(); p != nil && p.gen > gen {
					return nil
				}
				return b.poisonErr()
			}
			if s2>>barrierGenShift != gen {
				return nil
			}
			if spins > 64 {
				runtime.Gosched()
			}
		}
	}
}

// poisonErr returns the poison cause observed alongside the poison bit.
// The cell is published before the bit, so a party that saw the bit
// sees a cell; the yield loop is belt and braces.
func (b *Barrier) poisonErr() error {
	for {
		if p := b.perr.Load(); p != nil {
			return p.err
		}
		runtime.Gosched()
	}
}

// Poison releases every parked party and fails every future Await with
// err until Heal. The first poison's cause sticks; later calls on an
// already-poisoned barrier are no-ops.
func (b *Barrier) Poison(err error) {
	if err == nil {
		panic("l2atomic: Poison with nil error")
	}
	for {
		s := b.state.Load()
		if s&barrierPoisonBit != 0 {
			return
		}
		gen := s >> barrierGenShift
		// Publish the gen-stamped cause first, then flip the bit: anyone
		// who observes the bit observes a cell at least this new. The
		// monotonic CAS keeps a stale retry from clobbering a newer cell.
		b.storePoison(gen, err)
		// Bump the generation (releasing parked parties into the poison
		// check) and set the bit, zeroing the count, in one CAS.
		if b.state.CompareAndSwap(s, (gen+1)<<barrierGenShift|barrierPoisonBit) {
			return
		}
	}
}

// storePoison installs a poison cell unless one at least as new exists.
func (b *Barrier) storePoison(gen int64, err error) {
	cell := &barrierPoison{gen: gen, err: err}
	for {
		cur := b.perr.Load()
		if cur != nil && cur.gen >= gen {
			return
		}
		if b.perr.CompareAndSwap(cur, cell) {
			return
		}
	}
}

// Poisoned returns the current poison cause, nil when healthy.
func (b *Barrier) Poisoned() error {
	if b.state.Load()&barrierPoisonBit == 0 {
		return nil
	}
	return b.poisonErr()
}

// Heal returns a poisoned barrier to service on a fresh generation.
// Call it only from a point where the parties are known to have
// re-synchronized outside the barrier (the collective layer heals at
// its membership gate once the epoch is healthy again): Heal first
// waits for every party still physically inside Await to observe the
// poison and leave, so none can sleep through the cycle and miss the
// error. Healing a healthy barrier is a no-op; concurrent heals are
// safe.
func (b *Barrier) Heal() {
	for {
		s := b.state.Load()
		if s&barrierPoisonBit == 0 {
			return
		}
		for spins := 0; b.spinners.Load() != 0; spins++ {
			if spins > 16 {
				runtime.Gosched()
			}
		}
		gen := s >> barrierGenShift
		if b.state.CompareAndSwap(s, (gen+1)<<barrierGenShift) {
			return
		}
	}
}

// Parked returns how many parties are currently blocked inside Await —
// arrived for the current generation but not yet released. Inherently
// racy (the answer can change before it returns); tests and the stall
// sentinel use it as a progress probe, not for synchronization.
func (b *Barrier) Parked() int {
	return int(b.state.Load() & barrierCountMask)
}
