package l2atomic

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterLoadStore(t *testing.T) {
	var c Counter
	if got := c.Load(); got != 0 {
		t.Fatalf("zero value Load = %d, want 0", got)
	}
	c.Store(42)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load after Store(42) = %d", got)
	}
}

func TestCounterLoadIncrement(t *testing.T) {
	var c Counter
	if got := c.LoadIncrement(); got != 0 {
		t.Fatalf("first LoadIncrement = %d, want 0", got)
	}
	if got := c.LoadIncrement(); got != 1 {
		t.Fatalf("second LoadIncrement = %d, want 1", got)
	}
	if got := c.Load(); got != 2 {
		t.Fatalf("value after two increments = %d, want 2", got)
	}
}

func TestCounterLoadDecrement(t *testing.T) {
	var c Counter
	c.Store(5)
	if got := c.LoadDecrement(); got != 5 {
		t.Fatalf("LoadDecrement returned %d, want 5", got)
	}
	if got := c.Load(); got != 4 {
		t.Fatalf("value after decrement = %d, want 4", got)
	}
}

func TestCounterLoadClear(t *testing.T) {
	var c Counter
	c.Store(7)
	if got := c.LoadClear(); got != 7 {
		t.Fatalf("LoadClear returned %d, want 7", got)
	}
	if got := c.Load(); got != 0 {
		t.Fatalf("value after LoadClear = %d, want 0", got)
	}
}

func TestCounterStoreAdd(t *testing.T) {
	var c Counter
	c.StoreAdd(10)
	c.StoreAdd(-3)
	if got := c.Load(); got != 7 {
		t.Fatalf("value after StoreAdd = %d, want 7", got)
	}
}

func TestCounterStoreMax(t *testing.T) {
	var c Counter
	c.Store(5)
	c.StoreMax(3)
	if got := c.Load(); got != 5 {
		t.Fatalf("StoreMax(3) lowered the value to %d", got)
	}
	c.StoreMax(9)
	if got := c.Load(); got != 9 {
		t.Fatalf("StoreMax(9) = %d, want 9", got)
	}
}

func TestCounterStoreMaxConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(v int64) {
			defer wg.Done()
			c.StoreMax(v)
		}(int64(i))
	}
	wg.Wait()
	if got := c.Load(); got != 63 {
		t.Fatalf("concurrent StoreMax = %d, want 63", got)
	}
}

func TestLoadIncrementBounded(t *testing.T) {
	var c Counter
	for i := int64(0); i < 4; i++ {
		old, ok := c.LoadIncrementBounded(4)
		if !ok || old != i {
			t.Fatalf("bounded increment %d: old=%d ok=%v", i, old, ok)
		}
	}
	old, ok := c.LoadIncrementBounded(4)
	if ok {
		t.Fatalf("bounded increment past the bound succeeded (old=%d)", old)
	}
	if old != 4 {
		t.Fatalf("failed bounded increment reported old=%d, want 4", old)
	}
	// Raising the bound re-enables the increment.
	if _, ok := c.LoadIncrementBounded(5); !ok {
		t.Fatal("bounded increment with a raised bound failed")
	}
}

// TestLoadIncrementBoundedAllocatesExactly checks the property PAMI relies
// on: under arbitrary concurrency, exactly bound slots are handed out and
// every slot index in [0,bound) is handed out exactly once.
func TestLoadIncrementBoundedAllocatesExactly(t *testing.T) {
	const bound = 1000
	const workers = 16
	var c Counter
	var mu sync.Mutex
	seen := make(map[int64]int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				old, ok := c.LoadIncrementBounded(bound)
				if !ok {
					return
				}
				mu.Lock()
				seen[old]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != bound {
		t.Fatalf("allocated %d distinct slots, want %d", len(seen), bound)
	}
	for slot, n := range seen {
		if n != 1 {
			t.Fatalf("slot %d allocated %d times", slot, n)
		}
		if slot < 0 || slot >= bound {
			t.Fatalf("slot %d outside [0,%d)", slot, bound)
		}
	}
}

func TestCounterConcurrentIncrement(t *testing.T) {
	const workers, per = 8, 10000
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.LoadIncrement()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("concurrent increments lost updates: %d, want %d", got, workers*per)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	var m Mutex
	var held, violations int
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				m.Lock()
				held++
				if held != 1 {
					violations++
				}
				held--
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if violations != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations)
	}
}

func TestMutexTryLock(t *testing.T) {
	var m Mutex
	if !m.TryLock() {
		t.Fatal("TryLock on a free mutex failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on a held mutex succeeded")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	m.Unlock()
}

func TestMutexFairnessTickets(t *testing.T) {
	// The ticket discipline guarantees that a queued locker is eventually
	// served even under constant competition. Run competing lockers and a
	// victim; the victim must acquire the lock a deterministic number of
	// times rather than starving.
	var m Mutex
	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				m.Lock()
				m.Unlock()
			}
		}()
	}
	for i := 0; i < 100; i++ {
		m.Lock()
		m.Unlock()
	}
	close(done)
	wg.Wait()
}

func TestBarrierSingleParty(t *testing.T) {
	b := NewBarrier(1)
	for i := 0; i < 5; i++ {
		b.Await() // must never block
	}
}

func TestBarrierParties(t *testing.T) {
	if got := NewBarrier(7).Parties(); got != 7 {
		t.Fatalf("Parties = %d, want 7", got)
	}
}

func TestBarrierRejectsZeroParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

func TestBarrierSynchronizes(t *testing.T) {
	const parties = 8
	const rounds = 50
	b := NewBarrier(parties)
	var phase Counter
	var wg sync.WaitGroup
	errs := make(chan string, parties)
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				phase.LoadIncrement()
				b.Await()
				// After the barrier, every party of round r must have
				// incremented: phase >= (r+1)*parties.
				if got := phase.Load(); got < int64((r+1)*parties) {
					errs <- "barrier released before all parties arrived"
					return
				}
				b.Await() // separate the check from the next round's increments
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestBoundedIncrementNeverExceedsBoundQuick(t *testing.T) {
	// Property: for any bound b in [0,64] and any number of attempts, the
	// counter never exceeds b and the number of successes is exactly b.
	f := func(boundRaw uint8, attemptsRaw uint8) bool {
		bound := int64(boundRaw % 65)
		attempts := int(attemptsRaw)%128 + int(bound)
		var c Counter
		succ := int64(0)
		for i := 0; i < attempts; i++ {
			if _, ok := c.LoadIncrementBounded(bound); ok {
				succ++
			}
			if c.Load() > bound {
				return false
			}
		}
		return succ == bound && c.Load() == bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
