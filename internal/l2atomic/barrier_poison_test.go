package l2atomic

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var errPoisonTest = errors.New("test: node-mate died")

// A poisoned barrier must release every parked party with the typed
// error and fail later arrivals fast.
func TestBarrierPoisonReleasesParked(t *testing.T) {
	b := NewBarrier(4)
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() { errs <- b.Await() }()
	}
	// Wait until all three are parked, then poison instead of arriving.
	for b.Parked() != 3 {
		time.Sleep(time.Millisecond)
	}
	b.Poison(errPoisonTest)
	for i := 0; i < 3; i++ {
		if err := <-errs; !errors.Is(err, errPoisonTest) {
			t.Fatalf("parked party got %v, want poison cause", err)
		}
	}
	// The would-be fourth arriver fails fast too.
	if err := b.Await(); !errors.Is(err, errPoisonTest) {
		t.Fatalf("post-poison arrival got %v, want poison cause", err)
	}
	if b.Poisoned() == nil {
		t.Fatal("Poisoned() lost the sticky cause")
	}
}

// Heal must return the barrier to full service for fresh generations,
// and the first poison's cause must stick until then.
func TestBarrierReuseAfterHeal(t *testing.T) {
	b := NewBarrier(2)
	done := make(chan error, 1)
	go func() { done <- b.Await() }()
	for b.Parked() != 1 {
		time.Sleep(time.Millisecond)
	}
	b.Poison(errPoisonTest)
	b.Poison(errors.New("late second cause")) // no-op: first cause wins
	if err := <-done; !errors.Is(err, errPoisonTest) {
		t.Fatalf("parked party got %v", err)
	}
	b.Heal()
	b.Heal() // idempotent
	if err := b.Poisoned(); err != nil {
		t.Fatalf("healed barrier still poisoned: %v", err)
	}
	// Several healthy generations after the heal.
	for gen := 0; gen < 10; gen++ {
		var wg sync.WaitGroup
		for p := 0; p < 2; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := b.Await(); err != nil {
					t.Errorf("gen %d: %v", gen, err)
				}
			}()
		}
		wg.Wait()
	}
}

// Single-party barriers never park; poison must still fail them fast
// and heal must still restore them.
func TestBarrierPoisonSingleParty(t *testing.T) {
	b := NewBarrier(1)
	if err := b.Await(); err != nil {
		t.Fatalf("healthy single-party await: %v", err)
	}
	b.Poison(errPoisonTest)
	if err := b.Await(); !errors.Is(err, errPoisonTest) {
		t.Fatalf("poisoned single-party await got %v", err)
	}
	b.Heal()
	if err := b.Await(); err != nil {
		t.Fatalf("healed single-party await: %v", err)
	}
}

// Poison racing concurrent arrivals: every Await must return — either
// nil (its generation completed before the poison landed) or the
// poison cause — and after a heal the barrier must still work. Run
// with -race this is the poison-vs-arrive interleaving probe.
func TestBarrierPoisonArriveRace(t *testing.T) {
	const parties = 4
	for round := 0; round < 200; round++ {
		b := NewBarrier(parties)
		var wg sync.WaitGroup
		var nilCount, poisonCount atomic.Int64
		for p := 0; p < parties-1; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := b.Await(); err == nil {
					nilCount.Add(1)
				} else if errors.Is(err, errPoisonTest) {
					poisonCount.Add(1)
				} else {
					t.Errorf("unexpected error %v", err)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Poison(errPoisonTest)
		}()
		wg.Wait()
		// The last party never arrived, so nobody can have completed the
		// generation: every waiter must report the poison.
		if got := poisonCount.Load(); got != parties-1 {
			t.Fatalf("round %d: %d poisoned, %d nil; want all %d poisoned",
				round, got, nilCount.Load(), parties-1)
		}
		b.Heal()
		wg.Add(parties)
		for p := 0; p < parties; p++ {
			go func() {
				defer wg.Done()
				if err := b.Await(); err != nil {
					t.Errorf("round %d post-heal: %v", round, err)
				}
			}()
		}
		wg.Wait()
	}
}

// Poison racing the *completing* arrival: with all parties arriving
// concurrently with the poison, a generation may legitimately complete
// (all nil) or be poisoned (all poisoned), but never split.
func TestBarrierPoisonCompletionRace(t *testing.T) {
	const parties = 3
	for round := 0; round < 500; round++ {
		b := NewBarrier(parties)
		var wg sync.WaitGroup
		var nilCount, poisonCount atomic.Int64
		wg.Add(parties + 1)
		for p := 0; p < parties; p++ {
			go func() {
				defer wg.Done()
				if err := b.Await(); err == nil {
					nilCount.Add(1)
				} else {
					poisonCount.Add(1)
				}
			}()
		}
		go func() {
			defer wg.Done()
			b.Poison(errPoisonTest)
		}()
		wg.Wait()
		if nilCount.Load() != 0 && nilCount.Load() != parties {
			t.Fatalf("round %d: generation split: %d nil, %d poisoned",
				round, nilCount.Load(), poisonCount.Load())
		}
	}
}
