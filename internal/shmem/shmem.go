// Package shmem models PAMI's intra-node shared-memory device (paper
// §III.F). With multiple processes per node, messages between node peers
// never touch the torus: each process (strictly, each context) owns one
// reception queue that peers write into with L2 atomic bounded-increment
// slot allocation — "each process owns only one queue to which others
// atomically write into" — and the wakeup unit replaces polling on the
// receive path, exactly as it does for the MU.
//
// Short messages are copied through the queue (one copy in, one copy out,
// both within the shared L2, which is why intra-node eager is fast). Large
// messages ride the CNK global virtual address space instead: the sender
// publishes its buffer and the receiver copies directly from the sender's
// memory (package cnk), so the queue only carries the control message —
// that path is wired up by the PAMI core's rendezvous protocol.
package shmem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pamigo/internal/bufpool"
	"pamigo/internal/lockless"
	"pamigo/internal/mu"
	"pamigo/internal/telemetry"
	"pamigo/internal/torus"
	"pamigo/internal/wakeup"
)

// Message is one intra-node message: the same software header the MU path
// uses (so the PAMI dispatch layer is transport-agnostic) plus a payload
// that was copied into shared memory — a pooled slab — at send time. The
// consumer that polls a message owns one reference and must Release it
// after dispatch; Payload and Hdr.Meta are invalid afterwards.
type Message struct {
	Hdr     mu.Header
	Payload []byte

	pbuf *bufpool.Buf
	mbuf *bufpool.Buf
}

// Release returns the message's pooled slabs to the buffer pool.
func (m *Message) Release() {
	m.pbuf.Release()
	m.mbuf.Release()
	m.pbuf, m.mbuf = nil, nil
}

// Device is the shared-memory reception queue of one context.
type Device struct {
	addr   mu.TaskAddr
	q      *lockless.Queue[Message]
	region *wakeup.Region

	// received is sharded (telemetry.Counter) because every local
	// producer increments it on the eager fast path.
	received telemetry.Counter
}

// Poll removes the next message, if one is ready. Single consumer: the
// thread advancing the owning context, which must Release the message
// after dispatch.
func (d *Device) Poll() (Message, bool) {
	m, ok := d.q.Dequeue()
	return m, ok
}

// PollBatch drains up to len(dst) messages in delivery order with one
// head update on the lockless queue. The consumer must Release each
// drained message after dispatch.
func (d *Device) PollBatch(dst []Message) int {
	return d.q.DrainInto(dst)
}

// Empty reports whether the queue holds no messages.
func (d *Device) Empty() bool { return d.q.Empty() }

// Region returns the wakeup region touched on every delivery.
func (d *Device) Region() *wakeup.Region { return d.region }

// Received returns the number of messages delivered to this device.
func (d *Device) Received() int64 { return d.received.Load() }

// Pressure reports the device's queue occupancy and lock-free array
// capacity without any endpoint lookup — the fast-path form of
// Node.Pressure for senders that hold a resolved *Device.
func (d *Device) Pressure() (occ, arrayCap int64) {
	return int64(d.q.Len()), int64(d.q.Cap())
}

// Node is the per-node shared-memory segment: the registry mapping local
// endpoints to their reception queues.
type Node struct {
	rank torus.Rank

	mu  sync.RWMutex
	eps map[mu.TaskAddr]*Device
	gen atomic.Uint64 // bumped on every Register/Deregister; see Gen

	// sends/bytes are incremented by every local producer concurrently;
	// sharded counters keep the node totals off the senders' hot lines.
	sends telemetry.Counter
	bytes telemetry.Counter
}

// NewNode returns an empty shared-memory segment for the node with the
// given torus rank (the rank only labels errors and diagnostics).
func NewNode(rank torus.Rank) *Node {
	return &Node{rank: rank, eps: make(map[mu.TaskAddr]*Device)}
}

// Register creates and publishes the reception queue for a local endpoint.
// Deliveries signal region; pass the owning context's shared region. The
// queue's lock-free array holds slots messages before spilling into the
// mutex-protected overflow.
func (n *Node) Register(addr mu.TaskAddr, slots int, region *wakeup.Region) (*Device, error) {
	if region == nil {
		region = wakeup.NewRegion()
	}
	d := &Device{
		addr:   addr,
		q:      lockless.NewQueue[Message](slots),
		region: region,
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.eps[addr]; dup {
		return nil, fmt.Errorf("shmem: endpoint %v already registered", addr)
	}
	n.eps[addr] = d
	n.gen.Add(1)
	return d, nil
}

// Deregister removes a local endpoint's queue.
func (n *Node) Deregister(addr mu.TaskAddr) {
	n.mu.Lock()
	delete(n.eps, addr)
	n.gen.Add(1)
	n.mu.Unlock()
}

// Gen returns a generation stamp that changes with every Register or
// Deregister. Senders that cache a Resolve result revalidate against it
// instead of re-probing the endpoint map under its lock per message.
func (n *Node) Gen() uint64 { return n.gen.Load() }

// Resolve looks up the reception device of a local endpoint, for senders
// that pin a destination: resolve once, revalidate with Gen, then send
// through SendTo/SendBufTo with no lock or map probe per message.
func (n *Node) Resolve(dst mu.TaskAddr) (*Device, bool) {
	n.mu.RLock()
	d, ok := n.eps[dst]
	n.mu.RUnlock()
	return d, ok
}

// Send copies the payload into the destination endpoint's queue and wakes
// its region. Safe for concurrent use by any number of local producers;
// per-producer FIFO order is preserved by the lockless queue.
func (n *Node) Send(dst mu.TaskAddr, hdr mu.Header, payload []byte) error {
	d, ok := n.Resolve(dst)
	if !ok {
		return fmt.Errorf("shmem: no endpoint %v on this node", dst)
	}
	return n.SendTo(d, hdr, payload)
}

// SendTo is Send against an already-resolved device: the payload and
// metadata are copied into pooled shared-memory slabs, so the caller may
// reuse its buffers immediately.
func (n *Node) SendTo(d *Device, hdr mu.Header, payload []byte) error {
	hdr.Total = len(payload)
	msg := Message{Hdr: hdr}
	if len(hdr.Meta) > 0 {
		msg.mbuf = bufpool.GetCopy(hdr.Meta)
		msg.Hdr.Meta = msg.mbuf.Bytes()
	}
	if len(payload) > 0 {
		msg.pbuf = bufpool.GetCopy(payload)
		msg.Payload = msg.pbuf.Bytes()
	}
	return n.finish(d, &msg)
}

// SendBuf is Send with ownership transfer: the caller relinquishes the
// pooled payload and the queue takes it with no copy at all — the
// receiving context dispatches straight out of the sender's slab and
// Releases it. The reference is consumed on every path, error included.
// A nil payload is the zero-length message.
func (n *Node) SendBuf(dst mu.TaskAddr, hdr mu.Header, payload *bufpool.Buf) error {
	d, ok := n.Resolve(dst)
	if !ok {
		payload.Release()
		return fmt.Errorf("shmem: no endpoint %v on this node", dst)
	}
	return n.SendBufTo(d, hdr, payload)
}

// SendBufTo is SendBuf against an already-resolved device.
func (n *Node) SendBufTo(d *Device, hdr mu.Header, payload *bufpool.Buf) error {
	msg := Message{Hdr: hdr}
	if payload != nil {
		msg.Payload = payload.Bytes()
		msg.Hdr.Total = len(msg.Payload)
		msg.pbuf = payload
		if len(msg.Payload) == 0 {
			payload.Release()
			msg.pbuf = nil
		}
	} else {
		msg.Hdr.Total = 0
	}
	if len(hdr.Meta) > 0 {
		msg.mbuf = bufpool.GetCopy(hdr.Meta)
		msg.Hdr.Meta = msg.mbuf.Bytes()
	}
	return n.finish(d, &msg)
}

// finish enqueues the built message and settles accounting; on refusal
// the message's references are reclaimed.
func (n *Node) finish(d *Device, msg *Message) error {
	if err := d.q.EnqueueRef(msg); err != nil {
		msg.Release()
		return fmt.Errorf("shmem: endpoint %v on node %d refused message from %v: %w",
			d.addr, n.rank, msg.Hdr.Origin, err)
	}
	d.received.Inc()
	n.sends.Inc()
	n.bytes.Add(int64(msg.Hdr.Total))
	d.region.Touch()
	return nil
}

// Pressure reports the destination endpoint's queue occupancy and the
// capacity of its lock-free array; ok is false when the endpoint is not
// registered on this node. Senders read it to pace eager traffic before
// committing a copy into shared memory.
func (n *Node) Pressure(dst mu.TaskAddr) (occ, arrayCap int64, ok bool) {
	n.mu.RLock()
	d, found := n.eps[dst]
	n.mu.RUnlock()
	if !found {
		return 0, 0, false
	}
	return int64(d.q.Len()), int64(d.q.Cap()), true
}

// Stats returns the cumulative message and payload-byte counts.
func (n *Node) Stats() (sends, bytes int64) {
	return n.sends.Load(), n.bytes.Load()
}
