package shmem

import (
	"sync"
	"testing"

	"pamigo/internal/mu"
)

func TestSendReceive(t *testing.T) {
	n := NewNode(0)
	dev, err := n.Register(mu.TaskAddr{Task: 1, Ctx: 0}, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	hdr := mu.Header{Dispatch: 4, Origin: mu.TaskAddr{Task: 0, Ctx: 0}, Seq: 3, Meta: []byte("env")}
	if err := n.Send(mu.TaskAddr{Task: 1, Ctx: 0}, hdr, []byte("intranode")); err != nil {
		t.Fatal(err)
	}
	m, ok := dev.Poll()
	if !ok {
		t.Fatal("no message delivered")
	}
	if m.Hdr.Dispatch != 4 || m.Hdr.Seq != 3 || string(m.Hdr.Meta) != "env" {
		t.Fatalf("header mangled: %+v", m.Hdr)
	}
	if string(m.Payload) != "intranode" || m.Hdr.Total != 9 {
		t.Fatalf("payload mangled: %q total=%d", m.Payload, m.Hdr.Total)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	n := NewNode(0)
	dev, _ := n.Register(mu.TaskAddr{Task: 1}, 4, nil)
	buf := []byte("before")
	if err := n.Send(mu.TaskAddr{Task: 1}, mu.Header{}, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "after!")
	m, _ := dev.Poll()
	if string(m.Payload) != "before" {
		t.Fatalf("payload aliases sender buffer: %q", m.Payload)
	}
}

func TestSendUnknownEndpoint(t *testing.T) {
	n := NewNode(0)
	if err := n.Send(mu.TaskAddr{Task: 5}, mu.Header{}, nil); err == nil {
		t.Fatal("send to unknown endpoint succeeded")
	}
}

func TestRegisterDuplicate(t *testing.T) {
	n := NewNode(0)
	if _, err := n.Register(mu.TaskAddr{Task: 1}, 4, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(mu.TaskAddr{Task: 1}, 4, nil); err == nil {
		t.Fatal("duplicate registration succeeded")
	}
}

func TestDeregister(t *testing.T) {
	n := NewNode(0)
	addr := mu.TaskAddr{Task: 2, Ctx: 1}
	if _, err := n.Register(addr, 4, nil); err != nil {
		t.Fatal(err)
	}
	n.Deregister(addr)
	if err := n.Send(addr, mu.Header{}, nil); err == nil {
		t.Fatal("send after deregistration succeeded")
	}
}

func TestWakeupTouchedOnSend(t *testing.T) {
	n := NewNode(0)
	dev, _ := n.Register(mu.TaskAddr{Task: 1}, 4, nil)
	before, _ := dev.Region().Stats()
	if err := n.Send(mu.TaskAddr{Task: 1}, mu.Header{}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	after, _ := dev.Region().Stats()
	if after != before+1 {
		t.Fatalf("send touched region %d times", after-before)
	}
}

func TestZeroByteMessage(t *testing.T) {
	n := NewNode(0)
	dev, _ := n.Register(mu.TaskAddr{Task: 1}, 4, nil)
	if err := n.Send(mu.TaskAddr{Task: 1}, mu.Header{Seq: 1}, nil); err != nil {
		t.Fatal(err)
	}
	m, ok := dev.Poll()
	if !ok || m.Payload != nil || m.Hdr.Total != 0 {
		t.Fatalf("zero-byte message mangled: %+v", m)
	}
}

func TestStats(t *testing.T) {
	n := NewNode(0)
	n.Register(mu.TaskAddr{Task: 1}, 4, nil)
	n.Send(mu.TaskAddr{Task: 1}, mu.Header{}, make([]byte, 10))
	n.Send(mu.TaskAddr{Task: 1}, mu.Header{}, make([]byte, 5))
	sends, bytes := n.Stats()
	if sends != 2 || bytes != 15 {
		t.Fatalf("stats = (%d,%d)", sends, bytes)
	}
}

func TestConcurrentProducersPerSourceFIFO(t *testing.T) {
	n := NewNode(0)
	dst := mu.TaskAddr{Task: 0}
	dev, _ := n.Register(dst, 8, nil) // small array: exercise overflow
	const producers = 8
	const per = 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); i < per; i++ {
				hdr := mu.Header{Origin: mu.TaskAddr{Task: p + 1}, Seq: i}
				if err := n.Send(dst, hdr, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	last := make([]int64, producers+2)
	for i := range last {
		last[i] = -1
	}
	got := 0
	for got < producers*per {
		m, ok := dev.Poll()
		if !ok {
			continue
		}
		src := m.Hdr.Origin.Task
		if int64(m.Hdr.Seq) != last[src]+1 {
			t.Fatalf("per-producer order broken for %d: seq %d after %d", src, m.Hdr.Seq, last[src])
		}
		last[src] = int64(m.Hdr.Seq)
		got++
	}
	wg.Wait()
	if !dev.Empty() {
		t.Fatal("device not empty after drain")
	}
	if dev.Received() != producers*per {
		t.Fatalf("Received = %d", dev.Received())
	}
}
