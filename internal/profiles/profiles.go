// Package profiles wires the standard runtime/pprof file outputs into
// the repository's command-line benchmarks (cmd/msgrate, cmd/paperbench),
// so a hot-path investigation is one flag away instead of a rebuild with
// testing harness scaffolding.
package profiles

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty and returns a
// stop function that ends the CPU profile and, when memPath is
// non-empty, writes a heap profile (after a GC, so the live set is
// accurate). The stop function is safe to call exactly once; with both
// paths empty it is a no-op.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiles: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiles: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiles: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows the live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "profiles: write heap profile: %v\n", err)
			}
		}
	}, nil
}
