// Package recovery is the self-healing subsystem of the simulated BG/Q
// partition: buddy-replicated in-memory checkpoints plus a supervised
// state machine that turns a confirmed node death into an online
// restart — detect → fence → restore → resume — with no operator in
// the loop and no quiescence of the whole run.
//
// The checkpoint scheme is the FTC-Charm++ double in-memory checkpoint:
// each node's application state snapshot is kept locally *and*
// replicated to a deterministic buddy node chosen from a different
// failure domain (a different OS process when the partition spans
// processes over internal/wire; in a single-process machine the node
// itself is the failure domain and the buddy is simply the next node).
// Checkpoints are asynchronous: a node saves whenever its own progress
// marker crosses the interval, with no barrier and no quiescence — a
// replica may lag its local twin by an interval, which only means the
// restart replays a little more.
//
// Recovery is driven by the phi-accrual detector's death confirmation.
// The supervisor — acting for the recovery leader, the lowest alive
// rank of the current epoch — fences the dead epoch (the existing
// death wiring has already failed flows and shrunk classroutes),
// revives the victim's ranks through the machine's revival chain, and
// hands the buddy's replica to the application, which replays forward
// from the snapshot's version. Unaffected flows keep progressing
// throughout: nothing stops the world.
package recovery

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"pamigo/internal/torus"
)

// ErrCorruptSnapshot reports that a checkpoint/replica blob failed
// structural or integrity validation. A corrupted buddy replica is
// rejected with this error — never a panic — and the restart falls
// back to an older replica or a fresh start.
var ErrCorruptSnapshot = errors.New("recovery: corrupt snapshot blob")

// Snapshot is one node's application state at one point of progress.
// Version is an application-defined monotonic marker (the demo drivers
// use the round number); the store keeps only the newest version per
// node, so reordered or duplicated replication frames are harmless.
type Snapshot struct {
	Node    torus.Rank
	Version uint64
	Data    []byte
}

// Blob layout:
//
//	| magic u32 | format u16 | node u32 | version u64 | len u32 | data | crc u32 |
//
// crc is CRC-32C over everything before it. Every length is validated
// against the bytes actually present before any allocation.
const (
	snapMagic  = uint32(0x70615253) // "paRS"
	snapFormat = uint16(1)
	snapHeader = 4 + 2 + 4 + 8 + 4
	snapTrail  = 4

	// maxSnapData bounds one node's snapshot payload — structural sanity
	// against corrupt length fields, comfortably above anything the
	// wire transport could even carry in a replica frame.
	maxSnapData = 16 << 20
)

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes the snapshot into a self-validating blob.
func (s *Snapshot) Encode() []byte {
	b := make([]byte, snapHeader+len(s.Data)+snapTrail)
	binary.BigEndian.PutUint32(b[0:], snapMagic)
	binary.BigEndian.PutUint16(b[4:], snapFormat)
	binary.BigEndian.PutUint32(b[6:], uint32(s.Node))
	binary.BigEndian.PutUint64(b[10:], s.Version)
	binary.BigEndian.PutUint32(b[18:], uint32(len(s.Data)))
	copy(b[snapHeader:], s.Data)
	crc := crc32.Checksum(b[:snapHeader+len(s.Data)], snapCRC)
	binary.BigEndian.PutUint32(b[snapHeader+len(s.Data):], crc)
	return b
}

// DecodeSnapshot parses and verifies a snapshot blob. Every failure is
// a typed ErrCorruptSnapshot — a hostile or bit-flipped blob can never
// panic the decoder (FuzzRestoreBlob holds it to that). Data is copied
// out of the input, so the blob may be a transient view into a network
// read buffer.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < snapHeader+snapTrail {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrCorruptSnapshot, len(b), snapHeader+snapTrail)
	}
	if got := binary.BigEndian.Uint32(b[0:]); got != snapMagic {
		return nil, fmt.Errorf("%w: magic %08x, want %08x", ErrCorruptSnapshot, got, snapMagic)
	}
	if got := binary.BigEndian.Uint16(b[4:]); got != snapFormat {
		return nil, fmt.Errorf("%w: format %d, want %d", ErrCorruptSnapshot, got, snapFormat)
	}
	n := binary.BigEndian.Uint32(b[18:])
	if n > maxSnapData {
		return nil, fmt.Errorf("%w: data length %d exceeds %d", ErrCorruptSnapshot, n, maxSnapData)
	}
	if int(n) != len(b)-snapHeader-snapTrail {
		return nil, fmt.Errorf("%w: data length %d in %d-byte blob", ErrCorruptSnapshot, n, len(b))
	}
	want := binary.BigEndian.Uint32(b[snapHeader+int(n):])
	if got := crc32.Checksum(b[:snapHeader+int(n)], snapCRC); got != want {
		return nil, fmt.Errorf("%w: crc %08x, want %08x", ErrCorruptSnapshot, got, want)
	}
	s := &Snapshot{
		Node:    torus.Rank(binary.BigEndian.Uint32(b[6:])),
		Version: binary.BigEndian.Uint64(b[10:]),
	}
	if n > 0 {
		s.Data = append([]byte(nil), b[snapHeader:snapHeader+int(n)]...)
	}
	return s, nil
}
