package recovery

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pamigo/internal/abort"
	"pamigo/internal/fault"
	"pamigo/internal/telemetry"
	"pamigo/internal/torus"
	"pamigo/internal/watchdog"
)

// State is the supervisor's recovery state machine. One recovery runs
// at a time (deaths queue); the state is observable for telemetry and
// tests but carries no locking duty of its own.
type State int32

// Recovery states: Idle (nothing in flight), Fencing (death confirmed,
// waiting out the settle window while the death wiring propagates),
// Restoring (reviving the victim and locating its replica), Resuming
// (handing the snapshot back to the application).
const (
	StateIdle State = iota
	StateFencing
	StateRestoring
	StateResuming
)

// String names the state for logs.
func (s State) String() string {
	switch s {
	case StateFencing:
		return "fencing"
	case StateRestoring:
		return "restoring"
	case StateResuming:
		return "resuming"
	default:
		return "idle"
	}
}

// DefaultSettleDelay is the fencing window between a death confirmation
// and the revival: long enough for the death callbacks (flow failure,
// classroute shrink, blackholing) to finish propagating, short enough
// to keep MTTR in the single-digit milliseconds.
const DefaultSettleDelay = 2 * time.Millisecond

// Options is the operator-facing tuning of the recovery subsystem.
type Options struct {
	// AutoRevive makes the supervisor recover locally observed deaths on
	// its own: fence, revive, restore from the buddy replica, and hand
	// the snapshot to OnRestore — the single-process path. Over a wire
	// transport the victim is another OS process; revival then happens
	// on its rejoin handshake instead, and AutoRevive stays false.
	AutoRevive bool
	// SettleDelay overrides DefaultSettleDelay.
	SettleDelay time.Duration
	// Seed drives the deterministic poll jitter (replica waits).
	Seed int64
}

// Config wires a Supervisor into its process.
type Config struct {
	// Nodes is the partition's node count; HostedLo/HostedHi is the node
	// range this process hosts ([0, Nodes) in a single-process machine).
	Nodes              int
	HostedLo, HostedHi int
	Telemetry          *telemetry.Registry
	Options            Options

	// Alive reports whether a node is currently in the live membership
	// (the health monitor's verdict). Used for leader election.
	Alive func(torus.Rank) bool
	// Revive performs the machine-level revival of a node: clear the
	// injected fault, reset fabric flows, regrow classroutes, return the
	// node to the health membership (epoch bump).
	Revive func(torus.Rank) error
	// Replicate ships an encoded snapshot blob to the process hosting
	// the buddy node. nil means every buddy is in-process and the store
	// insert happens directly.
	Replicate func(buddy torus.Rank, blob []byte) error
}

// BuddyOf returns the buddy node holding node n's replica: the next
// node in ring order outside the owner's hosted node range [lo, hi) —
// the nearest different failure domain. When the owner hosts every node
// (single process) the buddy is simply the next node: the failure
// domain is then the simulated node itself, which preserves the
// placement rule's shape even though a process crash would take both
// copies (the chaos soak kills nodes, not the process, in that mode).
// Deterministic and owner-independent: survivors compute the same buddy
// for a victim's nodes as the victim did, from the victim's range.
func BuddyOf(n torus.Rank, nodes, lo, hi int) torus.Rank {
	for i := 1; i <= nodes; i++ {
		b := (int(n) + i) % nodes
		if b == int(n) {
			continue
		}
		if hi-lo < nodes && b >= lo && b < hi {
			continue // same failure domain as the owner
		}
		return torus.Rank(b)
	}
	return n
}

// Supervisor is the per-process recovery coordinator: it owns the
// checkpoint store, runs the detect → fence → restore → resume state
// machine, and accounts the recovery.* telemetry subtree.
type Supervisor struct {
	cfg   Config
	store *Store
	state atomic.Int32

	mu        sync.Mutex
	deathAt   map[torus.Rank]time.Time
	onRestore func(*Snapshot)

	restoreQ chan torus.Rank
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// waitSite is the stall-sentinel site replica waits register with;
	// nil until SetSentinel wires one.
	waitSite atomic.Pointer[watchdog.Site]

	checkpoints *telemetry.Counter
	replicas    *telemetry.Counter
	restores    *telemetry.Counter
	corrupt     *telemetry.Counter
	freshStarts *telemetry.Counter
	mttrNS      *telemetry.Gauge
}

// NewSupervisor builds and starts a supervisor.
func NewSupervisor(cfg Config) (*Supervisor, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("recovery: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.HostedLo < 0 || cfg.HostedHi > cfg.Nodes || cfg.HostedLo >= cfg.HostedHi {
		return nil, fmt.Errorf("recovery: hosted node range [%d,%d) outside the %d-node partition",
			cfg.HostedLo, cfg.HostedHi, cfg.Nodes)
	}
	if cfg.Options.SettleDelay <= 0 {
		cfg.Options.SettleDelay = DefaultSettleDelay
	}
	s := &Supervisor{
		cfg:      cfg,
		store:    NewStore(),
		deathAt:  make(map[torus.Rank]time.Time),
		restoreQ: make(chan torus.Rank, cfg.Nodes+1),
		stopCh:   make(chan struct{}),
	}
	g := cfg.Telemetry
	if g == nil {
		g = telemetry.NewRegistry("recovery")
	} else {
		g = g.Group("recovery")
	}
	s.checkpoints = g.Counter("checkpoints")
	s.replicas = g.Counter("replicas")
	s.restores = g.Counter("restores")
	s.corrupt = g.Counter("corrupt_replicas")
	s.freshStarts = g.Counter("fresh_starts")
	s.mttrNS = g.Gauge("mttr_ns")
	s.wg.Add(1)
	go s.worker()
	return s, nil
}

// Stop halts the supervisor's recovery worker. Idempotent.
func (s *Supervisor) Stop() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.wg.Wait()
}

// Store returns the supervisor's checkpoint store.
func (s *Supervisor) Store() *Store { return s.store }

// State returns the current recovery state.
func (s *Supervisor) State() State { return State(s.state.Load()) }

// OnRestore registers the application hook invoked with the restored
// snapshot at the end of an automatic recovery — the application
// relaunches the victim's tasks from it. At most one hook.
func (s *Supervisor) OnRestore(fn func(*Snapshot)) {
	s.mu.Lock()
	s.onRestore = fn
	s.mu.Unlock()
}

// Buddy returns the replica holder for one of this process's own nodes.
func (s *Supervisor) Buddy(n torus.Rank) torus.Rank {
	return BuddyOf(n, s.cfg.Nodes, s.cfg.HostedLo, s.cfg.HostedHi)
}

// Leader returns the recovery leader: the lowest alive node rank in the
// current epoch. Deterministic across processes — every survivor
// elects the same leader from the same membership view.
func (s *Supervisor) Leader() torus.Rank {
	for n := 0; n < s.cfg.Nodes; n++ {
		if s.cfg.Alive == nil || s.cfg.Alive(torus.Rank(n)) {
			return torus.Rank(n)
		}
	}
	return 0
}

// IsLeader reports whether this process hosts the recovery leader.
func (s *Supervisor) IsLeader() bool {
	l := int(s.Leader())
	return l >= s.cfg.HostedLo && l < s.cfg.HostedHi
}

// Checkpoint saves one hosted node's state at the given version: the
// local copy lands in the store, the encoded blob ships to the buddy.
// Asynchronous by design — no barrier, no quiescence; callers invoke it
// from their own progress loop whenever the interval crosses. data is
// copied, so the caller may reuse its buffer.
func (s *Supervisor) Checkpoint(node torus.Rank, version uint64, data []byte) error {
	snap := &Snapshot{Node: node, Version: version, Data: append([]byte(nil), data...)}
	s.store.PutLocal(snap)
	s.checkpoints.Inc()
	buddy := s.Buddy(node)
	if s.cfg.Replicate != nil {
		return s.cfg.Replicate(buddy, snap.Encode())
	}
	// Single failure domain: the buddy lives in this store.
	s.store.PutReplica(snap)
	s.replicas.Inc()
	return nil
}

// AcceptReplica ingests an encoded replica blob (from the wire
// transport's replica frames, or the local Replicate shortcut). A blob
// that fails validation is rejected with ErrCorruptSnapshot and
// counted — the previous replica, if any, stays in place.
func (s *Supervisor) AcceptReplica(blob []byte) error {
	snap, err := DecodeSnapshot(blob)
	if err != nil {
		s.corrupt.Inc()
		return err
	}
	s.store.PutReplica(snap)
	s.replicas.Inc()
	return nil
}

// ReplicaResponse decides this process's duty toward a rejoining victim
// hosting nodes [victimLo, victimHi): for victim node n, if this
// process hosts n's buddy it must answer — with the held replica, or
// with an empty version-0 snapshot when none was ever replicated (the
// victim died before its first checkpoint), so the victim never blocks
// on a holder with nothing to say. ok=false means another process is
// the designated responder.
func (s *Supervisor) ReplicaResponse(n torus.Rank, victimLo, victimHi int) (blob []byte, ok bool) {
	buddy := int(BuddyOf(n, s.cfg.Nodes, victimLo, victimHi))
	if buddy < s.cfg.HostedLo || buddy >= s.cfg.HostedHi {
		return nil, false
	}
	snap := s.store.Replica(n)
	if snap == nil {
		snap = &Snapshot{Node: n}
	}
	return snap.Encode(), true
}

// AwaitReplica blocks until a replica for node n is in the store (a
// rejoined victim waiting for its buddy's push), polling on a seeded
// jitter. Returns the snapshot — possibly the version-0 empty snapshot
// meaning "start fresh" — or, on timeout, a typed deadline abort
// (errors.Is(err, abort.ErrAborted)) so callers distinguish "buddy
// never pushed" from replica decode failures. While waiting, the park
// is visible in the sentinel's wait-site table when one is wired.
func (s *Supervisor) AwaitReplica(n torus.Rank, timeout time.Duration) (*Snapshot, error) {
	if st := s.waitSite.Load(); st != nil {
		var park watchdog.Park
		st.Enter(&park, nil) // observe-only: the poll below owns the deadline
		defer park.Leave()
	}
	deadline := time.Now().Add(timeout)
	for step := int64(0); ; step++ {
		if snap := s.store.Replica(n); snap != nil {
			return snap, nil
		}
		if time.Now().After(deadline) {
			return nil, abort.Wrap(abort.KindDeadline, "recovery.await.replica",
				fmt.Errorf("recovery: no replica for node %d arrived within %v", n, timeout))
		}
		time.Sleep(fault.Jitter(s.cfg.Options.Seed, step, time.Millisecond))
	}
}

// SetSentinel registers the replica-wait site with the partition stall
// sentinel so a victim stuck waiting for its buddy's push shows up in
// hang dumps. The wait keeps its own timeout, so the site is
// observe-only.
func (s *Supervisor) SetSentinel(sent *watchdog.Sentinel) {
	if sent == nil {
		return
	}
	s.waitSite.Store(sent.Site("recovery.await.replica"))
}

// NoteDeath records a confirmed death (machine wiring calls it from the
// health monitor's death callback — it must not block). With AutoRevive
// armed the death queues for the recovery worker; otherwise it only
// stamps the clock that MTTR is measured from when the node rejoins.
func (s *Supervisor) NoteDeath(n torus.Rank) {
	s.mu.Lock()
	s.deathAt[n] = time.Now()
	s.mu.Unlock()
	if s.cfg.Options.AutoRevive {
		select {
		case s.restoreQ <- n:
		default: // queue full: worker is drowning; drop rather than block the detector
		}
	}
}

// NoteRestored accounts a completed restore: bumps recovery.restores
// and publishes MTTR (death confirmation → restore complete) on
// recovery.mttr_ns. The wire rejoin path calls it after reviving a
// remote victim; the in-process worker calls it itself.
func (s *Supervisor) NoteRestored(n torus.Rank) {
	s.mu.Lock()
	t0, ok := s.deathAt[n]
	delete(s.deathAt, n)
	s.mu.Unlock()
	s.restores.Inc()
	if ok {
		s.mttrNS.Set(time.Since(t0).Nanoseconds())
	}
}

// worker serializes automatic recoveries: one victim at a time, in
// death-confirmation order.
func (s *Supervisor) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopCh:
			return
		case n := <-s.restoreQ:
			s.recover(n)
		}
	}
}

// recover runs one victim through fence → restore → resume.
func (s *Supervisor) recover(n torus.Rank) {
	defer s.state.Store(int32(StateIdle))
	s.state.Store(int32(StateFencing))
	// Fencing window: the death wiring (flow failure, classroute
	// shrink, blackholing) finishes propagating before the world is
	// told the node is back.
	tm := time.NewTimer(s.cfg.Options.SettleDelay)
	select {
	case <-s.stopCh:
		tm.Stop()
		return
	case <-tm.C:
	}
	s.state.Store(int32(StateRestoring))
	snap := s.store.Replica(n)
	if snap == nil {
		// Died before the first checkpoint interval: restart from zero.
		snap = &Snapshot{Node: n}
		s.freshStarts.Inc()
	}
	if s.cfg.Revive != nil {
		if err := s.cfg.Revive(n); err != nil {
			return
		}
	}
	s.state.Store(int32(StateResuming))
	s.NoteRestored(n)
	s.mu.Lock()
	cb := s.onRestore
	s.mu.Unlock()
	if cb != nil {
		cb(snap)
	}
}
