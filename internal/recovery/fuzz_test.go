package recovery

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzRestoreBlob holds the snapshot decoder to its contract under
// arbitrary input: it either returns a snapshot that re-encodes to a
// decodable blob, or a typed ErrCorruptSnapshot — never a panic, never
// an untyped error. The seed corpus is real Encode output (valid blobs
// plus targeted mutations), so the fuzzer starts on the interesting
// boundaries instead of deep in reject-at-magic territory.
func FuzzRestoreBlob(f *testing.F) {
	f.Add([]byte(nil))
	for _, s := range []*Snapshot{
		{Node: 0, Version: 0},
		{Node: 3, Version: 42, Data: []byte("round-42 digest state")},
		{Node: 7, Version: 1, Data: bytes.Repeat([]byte{0x5a}, 512)},
	} {
		blob := s.Encode()
		f.Add(blob)
		f.Add(blob[:len(blob)-1])           // truncated crc
		f.Add(blob[:snapHeader])            // header only
		f.Add(append(blob[:0:0], blob...))  // full copy for mutation
		mut := append(blob[:0:0], blob...)
		mut[18] ^= 0x80 // length field bit flip
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, blob []byte) {
		s, err := DecodeSnapshot(blob)
		if err != nil {
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("decode error not typed: %v", err)
			}
			return
		}
		// Accepted blobs must round-trip through Encode.
		again, err := DecodeSnapshot(s.Encode())
		if err != nil {
			t.Fatalf("re-encode of accepted snapshot does not decode: %v", err)
		}
		if again.Node != s.Node || again.Version != s.Version || !bytes.Equal(again.Data, s.Data) {
			t.Fatalf("re-encode round trip mismatch: %+v vs %+v", again, s)
		}
	})
}
