package recovery

import (
	"sync"

	"pamigo/internal/torus"
)

// Store holds this process's share of the double in-memory checkpoint:
// the local snapshots of the nodes it hosts, and the buddy replicas it
// keeps on behalf of nodes hosted elsewhere (or, in a single-process
// machine, of its other nodes). Both sides keep only the newest version
// per node — replication frames may arrive duplicated or out of order
// across reconnects, and an older version must never clobber a newer
// one. All methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	local   map[torus.Rank]*Snapshot
	replica map[torus.Rank]*Snapshot
}

// NewStore builds an empty checkpoint store.
func NewStore() *Store {
	return &Store{
		local:   make(map[torus.Rank]*Snapshot),
		replica: make(map[torus.Rank]*Snapshot),
	}
}

func put(m map[torus.Rank]*Snapshot, s *Snapshot) bool {
	if old, ok := m[s.Node]; ok && old.Version > s.Version {
		return false
	}
	m[s.Node] = s
	return true
}

// PutLocal records a node's own snapshot. Reports whether it was kept
// (false: an equal-or-newer version is already held — version ties keep
// the latest write, re-checkpointing the same round is idempotent).
func (st *Store) PutLocal(s *Snapshot) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return put(st.local, s)
}

// PutReplica records a buddy replica held for another node.
func (st *Store) PutReplica(s *Snapshot) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return put(st.replica, s)
}

// Local returns the newest local snapshot for node n, or nil.
func (st *Store) Local(n torus.Rank) *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.local[n]
}

// Replica returns the newest buddy replica held for node n, or nil.
func (st *Store) Replica(n torus.Rank) *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.replica[n]
}

// Drop forgets both sides' state for node n (a node leaving for good).
func (st *Store) Drop(n torus.Rank) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.local, n)
	delete(st.replica, n)
}
