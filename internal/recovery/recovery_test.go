package recovery

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"pamigo/internal/torus"
)

func TestSnapshotRoundTrip(t *testing.T) {
	for _, s := range []*Snapshot{
		{Node: 0, Version: 0},
		{Node: 3, Version: 17, Data: []byte("round-17 digest state")},
		{Node: 1, Version: 1 << 40, Data: bytes.Repeat([]byte{0xa5}, 4096)},
	} {
		blob := s.Encode()
		got, err := DecodeSnapshot(blob)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Node != s.Node || got.Version != s.Version || !bytes.Equal(got.Data, s.Data) {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, s)
		}
	}
}

func TestDecodeCopiesData(t *testing.T) {
	s := &Snapshot{Node: 2, Version: 9, Data: []byte("transient")}
	blob := s.Encode()
	got, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blob {
		blob[i] = 0xff
	}
	if !bytes.Equal(got.Data, []byte("transient")) {
		t.Fatal("decoded Data aliases the input blob")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good := (&Snapshot{Node: 5, Version: 3, Data: []byte("payload")}).Encode()
	cases := map[string][]byte{
		"empty":     nil,
		"truncated": good[:len(good)-5],
		"extended":  append(append([]byte(nil), good...), 0),
	}
	flip := func(i int) []byte {
		b := append([]byte(nil), good...)
		b[i] ^= 0x40
		return b
	}
	cases["bad magic"] = flip(0)
	cases["bad format"] = flip(5)
	cases["bit flip in data"] = flip(snapHeader + 2)
	cases["bit flip in crc"] = flip(len(good) - 1)
	for name, blob := range cases {
		if _, err := DecodeSnapshot(blob); !errors.Is(err, ErrCorruptSnapshot) {
			t.Errorf("%s: err = %v, want ErrCorruptSnapshot", name, err)
		}
	}
}

func TestStoreNewestVersionWins(t *testing.T) {
	st := NewStore()
	if !st.PutReplica(&Snapshot{Node: 1, Version: 5}) {
		t.Fatal("first put rejected")
	}
	if st.PutReplica(&Snapshot{Node: 1, Version: 3}) {
		t.Fatal("older version accepted")
	}
	if got := st.Replica(1).Version; got != 5 {
		t.Fatalf("replica version = %d, want 5", got)
	}
	if !st.PutReplica(&Snapshot{Node: 1, Version: 5, Data: []byte("rewrite")}) {
		t.Fatal("same-version rewrite rejected")
	}
	if !st.PutReplica(&Snapshot{Node: 1, Version: 6}) {
		t.Fatal("newer version rejected")
	}
	st.Drop(1)
	if st.Replica(1) != nil || st.Local(1) != nil {
		t.Fatal("Drop left state behind")
	}
}

func TestBuddyOf(t *testing.T) {
	// Single process hosting everything: buddy is the next node.
	if b := BuddyOf(2, 4, 0, 4); b != 3 {
		t.Fatalf("BuddyOf(2,4,0,4) = %d, want 3", b)
	}
	if b := BuddyOf(3, 4, 0, 4); b != 0 {
		t.Fatalf("BuddyOf(3,4,0,4) = %d, want 0", b)
	}
	// Two processes of two nodes each: buddy must leave the owner's range.
	if b := BuddyOf(0, 4, 0, 2); b != 2 {
		t.Fatalf("BuddyOf(0,4,0,2) = %d, want 2", b)
	}
	if b := BuddyOf(1, 4, 0, 2); b != 2 {
		t.Fatalf("BuddyOf(1,4,0,2) = %d, want 2", b)
	}
	if b := BuddyOf(3, 4, 2, 4); b != 0 {
		t.Fatalf("BuddyOf(3,4,2,4) = %d, want 0", b)
	}
	// Survivors compute the victim's buddy from the victim's range and
	// agree with what the victim computed for itself.
	if own, peer := BuddyOf(2, 4, 2, 4), BuddyOf(2, 4, 2, 4); own != peer {
		t.Fatalf("buddy disagreement: %d vs %d", own, peer)
	}
}

func TestSupervisorAutoRecover(t *testing.T) {
	revived := make(chan torus.Rank, 1)
	var sup *Supervisor
	var err error
	sup, err = NewSupervisor(Config{
		Nodes: 4, HostedLo: 0, HostedHi: 4,
		Options: Options{AutoRevive: true, SettleDelay: time.Millisecond},
		Revive:  func(n torus.Rank) error { revived <- n; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	restored := make(chan *Snapshot, 1)
	sup.OnRestore(func(s *Snapshot) { restored <- s })

	if err := sup.Checkpoint(1, 7, []byte("state@7")); err != nil {
		t.Fatal(err)
	}
	// With no Replicate hook the buddy lives in the same store.
	if sup.Store().Replica(1) == nil {
		t.Fatal("local replication did not land in store")
	}

	sup.NoteDeath(1)
	select {
	case n := <-revived:
		if n != 1 {
			t.Fatalf("revived node %d, want 1", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Revive never called")
	}
	select {
	case s := <-restored:
		if s.Node != 1 || s.Version != 7 || string(s.Data) != "state@7" {
			t.Fatalf("restored %+v, want node 1 version 7", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnRestore never called")
	}
}

func TestSupervisorFreshStartWithoutReplica(t *testing.T) {
	sup, err := NewSupervisor(Config{
		Nodes: 2, HostedLo: 0, HostedHi: 2,
		Options: Options{AutoRevive: true, SettleDelay: time.Millisecond},
		Revive:  func(torus.Rank) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	restored := make(chan *Snapshot, 1)
	sup.OnRestore(func(s *Snapshot) { restored <- s })
	sup.NoteDeath(0)
	select {
	case s := <-restored:
		if s.Version != 0 || len(s.Data) != 0 {
			t.Fatalf("expected empty version-0 snapshot, got %+v", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnRestore never called")
	}
}

func TestReplicaResponse(t *testing.T) {
	// Process hosting [2,4) of a 4-node partition; victim hosts [0,2).
	sup, err := NewSupervisor(Config{Nodes: 4, HostedLo: 2, HostedHi: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	// Buddy of victim node 0 is node 2 — ours, and we hold a replica.
	if err := sup.AcceptReplica((&Snapshot{Node: 0, Version: 12, Data: []byte("n0")}).Encode()); err != nil {
		t.Fatal(err)
	}
	blob, ok := sup.ReplicaResponse(0, 0, 2)
	if !ok {
		t.Fatal("should be the designated responder for node 0")
	}
	s, err := DecodeSnapshot(blob)
	if err != nil || s.Version != 12 {
		t.Fatalf("responded with %+v (%v), want version 12", s, err)
	}

	// Node 1's buddy is also node 2 (ring walk skips [0,2)); no replica
	// held → empty version-0 answer, never silence.
	blob, ok = sup.ReplicaResponse(1, 0, 2)
	if !ok {
		t.Fatal("should be the designated responder for node 1")
	}
	if s, err := DecodeSnapshot(blob); err != nil || s.Version != 0 {
		t.Fatalf("want empty v0 response, got %+v (%v)", s, err)
	}

	// A corrupt replica frame is rejected, not stored.
	if err := sup.AcceptReplica([]byte("garbage")); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("AcceptReplica(garbage) = %v, want ErrCorruptSnapshot", err)
	}
}

func TestAwaitReplica(t *testing.T) {
	sup, err := NewSupervisor(Config{Nodes: 2, HostedLo: 0, HostedHi: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	if _, err := sup.AwaitReplica(0, 10*time.Millisecond); err == nil {
		t.Fatal("AwaitReplica should time out with no replica")
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		sup.Store().PutReplica(&Snapshot{Node: 0, Version: 4})
	}()
	s, err := sup.AwaitReplica(0, 2*time.Second)
	if err != nil || s.Version != 4 {
		t.Fatalf("AwaitReplica = %+v, %v", s, err)
	}
}

func TestLeader(t *testing.T) {
	dead := map[torus.Rank]bool{0: true}
	sup, err := NewSupervisor(Config{
		Nodes: 4, HostedLo: 0, HostedHi: 4,
		Alive: func(n torus.Rank) bool { return !dead[n] },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	if l := sup.Leader(); l != 1 {
		t.Fatalf("Leader = %d, want 1 (lowest alive)", l)
	}
	if !sup.IsLeader() {
		t.Fatal("this process hosts rank 1 and should lead")
	}
}
