package collnet

import (
	"testing"
	"testing/quick"

	"pamigo/internal/torus"
)

// Property: the tree-order session fold equals a plain sequential fold
// for every op on integer data (exact associativity), whatever the
// machine shape and contribution values.
func TestSessionFoldMatchesSequentialQuick(t *testing.T) {
	shapes := []torus.Dims{
		{2, 1, 1, 1, 1},
		{2, 2, 1, 1, 1},
		{3, 2, 1, 1, 1},
		{2, 2, 2, 1, 1},
	}
	f := func(raw []int64, shapeIdx uint8, opIdx uint8) bool {
		dims := shapes[int(shapeIdx)%len(shapes)]
		op := []Op{OpAdd, OpMin, OpMax, OpBitOR, OpBitAND}[int(opIdx)%5]
		n := New(dims)
		cr, err := n.AllocateWorld()
		if err != nil {
			return false
		}
		// One word per node, values cycled from raw.
		vals := make([]int64, dims.Nodes())
		for i := range vals {
			if len(raw) > 0 {
				vals[i] = raw[i%len(raw)]
			} else {
				vals[i] = int64(i)
			}
		}
		s, _ := cr.Join(1, KindReduce, op, Int64, 8)
		for i, r := range cr.Ranks() {
			s.Contribute(r, EncodeInt64s([]int64{vals[i]}))
		}
		got := DecodeInt64s(s.Wait())[0]
		// Drain remaining waiters so the session retires cleanly.
		for range cr.Ranks()[1:] {
			// Wait is idempotent on the result; each party calls it once.
		}
		want := vals[0]
		acc := EncodeInt64s([]int64{want})
		for _, v := range vals[1:] {
			if err := Combine(op, Int64, acc, EncodeInt64s([]int64{v})); err != nil {
				return false
			}
		}
		want = DecodeInt64s(acc)[0]
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: combine is element-independent — combining whole vectors
// equals combining each word separately.
func TestCombineElementwiseQuick(t *testing.T) {
	f := func(a, b []int64, opIdx uint8) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		a, b = a[:n], b[:n]
		op := []Op{OpAdd, OpMin, OpMax}[int(opIdx)%3]
		whole := EncodeInt64s(a)
		if err := Combine(op, Int64, whole, EncodeInt64s(b)); err != nil {
			return false
		}
		wholeVals := DecodeInt64s(whole)
		for i := 0; i < n; i++ {
			one := EncodeInt64s([]int64{a[i]})
			if err := Combine(op, Int64, one, EncodeInt64s([]int64{b[i]})); err != nil {
				return false
			}
			if DecodeInt64s(one)[0] != wholeVals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
