package collnet

import (
	"errors"
	"testing"
	"time"

	"pamigo/internal/abort"
	"pamigo/internal/watchdog"
)

func poisonTestRoute(t *testing.T) (*Network, *ClassRoute) {
	t.Helper()
	n := New(dims)
	cr, err := n.AllocateWorld()
	if err != nil {
		t.Fatalf("AllocateWorld: %v", err)
	}
	return n, cr
}

// Poison must release a Join parked on the session-credit gate with the
// typed cause, and fail later Joins fast until Heal.
func TestJoinPoisonReleasesCreditParked(t *testing.T) {
	_, cr := poisonTestRoute(t)
	for seq := uint64(0); seq < SessionCredits; seq++ {
		if _, err := cr.Join(seq, KindBarrier, OpAdd, Uint64, 0); err != nil {
			t.Fatalf("Join(%d): %v", seq, err)
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := cr.Join(SessionCredits, KindBarrier, OpAdd, Uint64, 0)
		done <- err
	}()
	// Let the joiner park on the credit gate.
	deadline := time.Now().Add(5 * time.Second)
	for cr.net.creditStalls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("joiner never hit the credit gate")
		}
		time.Sleep(time.Millisecond)
	}
	cause := abort.Causef(abort.KindDeadline, "collnet.join.credit", "test stall")
	cr.Poison(cause)
	select {
	case err := <-done:
		if !errors.Is(err, abort.ErrAborted) {
			t.Fatalf("parked Join returned %v, want ErrAborted wrap", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("poison did not release the credit-parked Join")
	}
	if _, err := cr.Join(SessionCredits+1, KindBarrier, OpAdd, Uint64, 0); !errors.Is(err, abort.ErrAborted) {
		t.Fatalf("poisoned route Join returned %v, want fail-fast ErrAborted", err)
	}
	// Joining an already-open session still works — slow peers must be
	// able to drain what is in flight.
	if _, err := cr.Join(0, KindBarrier, OpAdd, Uint64, 0); err != nil {
		t.Fatalf("Join of open session on poisoned route: %v", err)
	}
	cr.Heal()
	s, err := cr.Join(0, KindBarrier, OpAdd, Uint64, 0)
	if err != nil || s == nil {
		t.Fatalf("healed route Join: %v", err)
	}
}

// An armed sentinel must escalate a credit-parked Join into a typed
// abort end to end: park registers at the site, the scanner fires, the
// escalation hook poisons the route, the joiner returns ErrAborted.
func TestJoinSentinelEscalatesCreditStall(t *testing.T) {
	n, cr := poisonTestRoute(t)
	sent := watchdog.NewSentinel(nil)
	n.SetSentinel(sent)
	sent.Arm(20*time.Millisecond, 5*time.Millisecond)
	defer sent.Stop()
	for seq := uint64(0); seq < SessionCredits; seq++ {
		if _, err := cr.Join(seq, KindBarrier, OpAdd, Uint64, 0); err != nil {
			t.Fatalf("Join(%d): %v", seq, err)
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := cr.Join(SessionCredits, KindBarrier, OpAdd, Uint64, 0)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, abort.ErrAborted) {
			t.Fatalf("stalled Join returned %v, want ErrAborted wrap", err)
		}
		var c *abort.Cause
		if !errors.As(err, &c) || c.Kind != abort.KindDeadline {
			t.Fatalf("stalled Join cause = %v, want KindDeadline", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sentinel never escalated the credit stall")
	}
}

// GIBarrier poison must wake parked parties of the in-flight generation
// with the cause, fail later Awaits fast, and be clear after Heal.
func TestGIBarrierPoison(t *testing.T) {
	b := NewGIBarrier(2)
	done := make(chan error, 1)
	go func() { done <- b.Await() }()
	time.Sleep(10 * time.Millisecond) // let the party park
	cause := abort.Causef(abort.KindHealth, "test.gibarrier", "peer died")
	b.Poison(cause)
	b.Poison(errors.New("second cause must not stick"))
	select {
	case err := <-done:
		if !errors.Is(err, abort.ErrAborted) {
			t.Fatalf("parked Await returned %v, want ErrAborted wrap", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("poison did not release the parked GI party")
	}
	if err := b.Await(); !errors.Is(err, cause) {
		t.Fatalf("poisoned Await returned %v, want first cause fail-fast", err)
	}
	if err := b.Poisoned(); !errors.Is(err, cause) {
		t.Fatalf("Poisoned() = %v, want first cause", err)
	}
	b.Heal()
	res := make(chan error, 2)
	go func() { res <- b.Await() }()
	go func() { res <- b.Await() }()
	for i := 0; i < 2; i++ {
		select {
		case err := <-res:
			if err != nil {
				t.Fatalf("healed Await returned %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("healed barrier did not complete")
		}
	}
}
