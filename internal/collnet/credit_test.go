package collnet

import (
	"sync"
	"testing"
	"time"
)

// drain retires a session on behalf of every party: contributions have
// already arrived, so each Wait just reads the result.
func drain(s *Session) {
	for i := 0; i < s.parties; i++ {
		s.Wait()
	}
}

// contributeAll completes a reduce session from every participating rank.
func contributeAll(cr *ClassRoute, s *Session, payload []byte) {
	for _, r := range cr.Ranks() {
		s.Contribute(r, payload)
	}
}

// TestSessionCreditsBoundInbox pipelines contributions far ahead of any
// waiter and checks the three inbox-credit promises: the producer parks at
// the cap instead of growing the session map, the parked-bytes gauge's
// high-water mark is bounded by credits x parties x nbytes, and both
// gauges return to zero once everything retires — no leaked credit, no
// leaked contribution memory.
func TestSessionCreditsBoundInbox(t *testing.T) {
	n := New(dims)
	cr, err := n.AllocateWorld()
	if err != nil {
		t.Fatal(err)
	}
	const nbytes = 64
	const total = SessionCredits * 3
	payload := make([]byte, nbytes)

	// The runaway producer: joins and fully contributes ever-later
	// sessions without ever waiting. It must block at the credit cap.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for seq := uint64(0); seq < total; seq++ {
			s, _ := cr.Join(seq, KindReduce, OpAdd, Int64, nbytes)
			contributeAll(cr, s, payload)
		}
	}()

	// Give the producer time to run into the cap, then check it parked.
	deadline := time.Now().Add(5 * time.Second)
	for n.sessionsOpen.Load() < SessionCredits && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond) // would-be overshoot window
	if open := n.sessionsOpen.Load(); open != SessionCredits {
		t.Fatalf("producer holds %d open sessions, credit cap is %d", open, SessionCredits)
	}
	if n.creditStalls.Load() == 0 {
		t.Fatal("producer never stalled on a session credit")
	}

	// Retire sessions in order; each retirement frees a credit and the
	// producer advances. Join of an already-open session must not block.
	for seq := uint64(0); seq < total; seq++ {
		s, _ := cr.Join(seq, KindReduce, OpAdd, Int64, nbytes)
		<-s.Done()
		drain(s)
	}
	wg.Wait()

	if open := n.sessionsOpen.Load(); open != 0 {
		t.Fatalf("%d sessions still open after all retired", open)
	}
	if parked := n.inboxBytes.Load(); parked != 0 {
		t.Fatalf("%d contribution bytes still parked after all sessions retired", parked)
	}
	maxParked := int64(SessionCredits * len(cr.Ranks()) * nbytes)
	if hwm := n.inboxBytes.HighWater(); hwm > maxParked {
		t.Fatalf("inbox high water %dB exceeds credits*parties*nbytes = %dB", hwm, maxParked)
	}
	if hwm := n.sessionsOpen.HighWater(); hwm > SessionCredits {
		t.Fatalf("open-session high water %d exceeds the %d credit cap", hwm, SessionCredits)
	}
}

// TestFreeWakesBlockedJoin frees the classroute while a producer is
// parked on a full inbox: the waiter must wake and panic with the freed
// diagnostic rather than sleep forever on a credit that cannot come.
func TestFreeWakesBlockedJoin(t *testing.T) {
	n := New(dims)
	cr, err := n.AllocateWorld()
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(0); seq < SessionCredits; seq++ {
		cr.Join(seq, KindBarrier, OpAdd, Uint64, 0)
	}
	woke := make(chan interface{}, 1)
	go func() {
		defer func() { woke <- recover() }()
		cr.Join(SessionCredits, KindBarrier, OpAdd, Uint64, 0)
	}()
	// Wait until the joiner is parked on the cap, then free the route.
	deadline := time.Now().Add(5 * time.Second)
	for n.creditStalls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	n.Free(cr)
	select {
	case v := <-woke:
		if v == nil {
			t.Fatal("blocked Join returned a session from a freed classroute")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Join still parked after the classroute was freed")
	}
}
