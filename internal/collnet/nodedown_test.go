package collnet

import (
	"errors"
	"testing"

	"pamigo/internal/health"
	"pamigo/internal/torus"
)

// TestHandleNodeDownShrinksRoute kills a leaf node and requires the
// classroute to drop it from the membership, rebuild the tree over the
// survivors, and still complete a fresh session exactly.
func TestHandleNodeDownShrinksRoute(t *testing.T) {
	n := New(dims)
	cr, err := n.AllocateWorld()
	if err != nil {
		t.Fatal(err)
	}
	before := cr.Parties()
	ranks := cr.Ranks()
	victim := ranks[len(ranks)-1] // not the root (root is the lowest rank)
	n.HandleNodeDown(victim)
	if got := cr.Parties(); got != before-1 {
		t.Fatalf("parties = %d after death, want %d", got, before-1)
	}
	for _, r := range cr.Ranks() {
		if r == victim {
			t.Fatalf("dead node %d still listed in the route", victim)
		}
	}
	if n.DeadNodes() != 1 {
		t.Fatalf("DeadNodes = %d, want 1", n.DeadNodes())
	}
	// A fresh session over the survivors completes and sums exactly.
	contribs := make(map[torus.Rank][]byte)
	var want int64
	for _, r := range cr.Ranks() {
		contribs[r] = EncodeInt64s([]int64{int64(r) + 1})
		want += int64(r) + 1
	}
	res := runSession(t, cr, KindReduce, OpAdd, Int64, contribs)
	if got := DecodeInt64s(res)[0]; got != want {
		t.Fatalf("survivor allreduce = %d, want %d", got, want)
	}
}

// TestHandleNodeDownFailsOpenSessions opens a session, kills a member
// mid-flight, and requires waiters to wake with ErrEpochChanged instead
// of blocking on a contribution that will never arrive.
func TestHandleNodeDownFailsOpenSessions(t *testing.T) {
	n := New(dims)
	cr, err := n.AllocateWorld()
	if err != nil {
		t.Fatal(err)
	}
	ranks := cr.Ranks()
	victim := ranks[len(ranks)-1]
	s, _ := cr.Join(1, KindBarrier, OpAdd, Uint64, 0)
	s.Contribute(ranks[0], nil) // one survivor arrived; the rest never will
	n.HandleNodeDown(victim)
	if !s.Ready() {
		t.Fatal("session not completed after the member death")
	}
	if _, err := s.WaitErr(); !errors.Is(err, health.ErrEpochChanged) {
		t.Fatalf("WaitErr = %v, want ErrEpochChanged", err)
	}
	// Survivors that contribute after the failure must not panic or block.
	s.Contribute(ranks[1], nil)
	if v, _ := n.Telemetry().Snapshot().Counter("sessions_failed"); v != 1 {
		t.Fatalf("sessions_failed = %d, want 1", v)
	}
}

// TestHandleNodeDownReElectsRoot kills the route's root and requires the
// lowest surviving rank to take over.
func TestHandleNodeDownReElectsRoot(t *testing.T) {
	n := New(dims)
	cr, err := n.AllocateWorld()
	if err != nil {
		t.Fatal(err)
	}
	oldRoot := cr.Root
	n.HandleNodeDown(oldRoot)
	if cr.Root == oldRoot {
		t.Fatal("dead root was not re-elected")
	}
	if want := cr.Ranks()[0]; cr.Root != want {
		t.Fatalf("new root = %d, want lowest survivor %d", cr.Root, want)
	}
	if tree := cr.Tree(); tree.Root != cr.Root {
		t.Fatalf("tree root = %d, route root = %d", tree.Root, cr.Root)
	}
}

// TestAllocateRejectsDeadRoot requires new allocations to refuse a
// confirmed-dead root and to silently exclude dead members.
func TestAllocateRejectsDeadRoot(t *testing.T) {
	n := New(dims)
	dead := torus.Rank(0)
	n.HandleNodeDown(dead)
	rect := torus.Rectangle{Hi: torus.Coord{1, 1, 1, 0, 0}}
	if _, err := n.Allocate(rect, dead); err == nil {
		t.Fatal("allocation rooted at a dead node accepted")
	}
	cr, err := n.Allocate(rect, torus.Rank(1))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cr.Parties(), dims.Nodes()-1; got != want {
		t.Fatalf("parties = %d, want %d (dead node excluded)", got, want)
	}
}
