// Package collnet models the Blue Gene/Q collective network (paper §II.B,
// §III.D). Unlike BG/L and BG/P, the BG/Q collective network is embedded in
// the 5D torus: a *classroute* programs, at every participating node, which
// links feed the combine up-tree and which link forwards toward the root,
// so that barrier, broadcast, reduce and allreduce execute in the network
// with integer and floating-point add/min/max combining.
//
// The package provides:
//
//   - ClassRoute allocation over contiguous rectangles of nodes, with the
//     hardware limit of 16 routes per node (some reserved for the system),
//     which is why PAMI exposes communicator "optimize"/"deoptimize";
//   - the combine arithmetic the router ALU implements;
//   - functional collective sessions (reduce / allreduce / broadcast /
//     barrier) that processes on different goroutine "nodes" join and that
//     combine contributions in a deterministic tree order, exactly like the
//     hardware's fixed wiring makes FP reductions reproducible;
//   - the Global Interrupt (GI) barrier used by MPI_Barrier.
//
// Timing at 2048-node scale is not modeled here; internal/model derives
// figure latencies from the tree geometry this package exposes.
package collnet

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"sync/atomic"

	"pamigo/internal/health"
	"pamigo/internal/telemetry"
	"pamigo/internal/torus"
	"pamigo/internal/watchdog"
)

// SlotsPerNode is the hardware classroute capacity of a node.
const SlotsPerNode = 16

// ReservedSlots is how many classroute slots the system keeps for itself
// (system collectives, job control).
const ReservedSlots = 2

// UserSlots is the number of classroute slots available to user software.
const UserSlots = SlotsPerNode - ReservedSlots

// Op is a combine operation supported by the collective network ALU.
type Op int

// Supported combine operations (paper: "integer and floating point
// operations such as add, min and max").
const (
	OpAdd Op = iota
	OpMin
	OpMax
	OpBitOR  // used by software for flags; routers support logical ops
	OpBitAND // used by software for agreement bits
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpBitOR:
		return "bor"
	case OpBitAND:
		return "band"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// DType is the element type the router ALU combines.
type DType int

// Supported element types; all are 8-byte words, the unit of the L2
// atomics and of the router ALU datapath.
const (
	Int64 DType = iota
	Uint64
	Float64
)

// Size returns the element size in bytes.
func (d DType) Size() int { return 8 }

// String names the type.
func (d DType) String() string {
	switch d {
	case Int64:
		return "int64"
	case Uint64:
		return "uint64"
	case Float64:
		return "float64"
	}
	return fmt.Sprintf("dtype(%d)", int(d))
}

// Combine folds src into acc element-wise: acc = acc (op) src. Buffers are
// little-endian packed 8-byte words and must have equal length, a multiple
// of 8.
func Combine(op Op, dt DType, acc, src []byte) error {
	if len(acc) != len(src) {
		return fmt.Errorf("collnet: combine length mismatch %d vs %d", len(acc), len(src))
	}
	if len(acc)%8 != 0 {
		return fmt.Errorf("collnet: combine length %d not word aligned", len(acc))
	}
	for i := 0; i < len(acc); i += 8 {
		a := binary.LittleEndian.Uint64(acc[i:])
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(acc[i:], combineWord(op, dt, a, s))
	}
	return nil
}

func combineWord(op Op, dt DType, a, s uint64) uint64 {
	switch op {
	case OpBitOR:
		return a | s
	case OpBitAND:
		return a & s
	}
	switch dt {
	case Int64:
		x, y := int64(a), int64(s)
		switch op {
		case OpAdd:
			return uint64(x + y)
		case OpMin:
			if y < x {
				return uint64(y)
			}
			return uint64(x)
		case OpMax:
			if y > x {
				return uint64(y)
			}
			return uint64(x)
		}
	case Uint64:
		switch op {
		case OpAdd:
			return a + s
		case OpMin:
			if s < a {
				return s
			}
			return a
		case OpMax:
			if s > a {
				return s
			}
			return a
		}
	case Float64:
		x, y := math.Float64frombits(a), math.Float64frombits(s)
		switch op {
		case OpAdd:
			return math.Float64bits(x + y)
		case OpMin:
			return math.Float64bits(math.Min(x, y))
		case OpMax:
			return math.Float64bits(math.Max(x, y))
		}
	}
	panic(fmt.Sprintf("collnet: unsupported op %v on %v", op, dt))
}

// EncodeFloat64s packs values little-endian into a fresh byte buffer.
func EncodeFloat64s(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// DecodeFloat64s unpacks a little-endian buffer into float64 values.
func DecodeFloat64s(buf []byte) []float64 {
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out
}

// EncodeInt64s packs values little-endian into a fresh byte buffer.
func EncodeInt64s(vals []int64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(v))
	}
	return out
}

// DecodeInt64s unpacks a little-endian buffer into int64 values.
func DecodeInt64s(buf []byte) []int64 {
	out := make([]int64, len(buf)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out
}

// ClassRoute is one programmed collective tree over a rectangle of nodes.
type ClassRoute struct {
	ID   int
	Rect torus.Rectangle
	Root torus.Rank // current root; re-elected if the original dies

	// tree is the currently programmed combine tree. It is swapped
	// atomically when a link failure forces a rebuild, so in-flight
	// sessions read a consistent tree (old or new, both spanning).
	tree atomic.Pointer[torus.Tree]

	// ranks is the surviving membership, swapped atomically when a node
	// death shrinks the route.
	ranks atomic.Pointer[[]torus.Rank]

	net      *Network
	degraded bool // no fault-avoiding tree exists; running on a stale one

	mu       sync.Mutex
	sessions map[uint64]*Session
	retired  *sync.Cond // signalled under mu when a session retires or the route is freed
	poison   error      // sticky route failure: every Join fails fast with it
}

// Poison marks the classroute failed: parked and future Joins return
// err (typically an abort.Cause from the stall sentinel) instead of
// waiting for credits that will never free. The first cause sticks.
func (cr *ClassRoute) Poison(err error) {
	if err == nil {
		panic("collnet: Poison with nil error")
	}
	cr.mu.Lock()
	if cr.poison == nil {
		cr.poison = err
		cr.retired.Broadcast()
	}
	cr.mu.Unlock()
}

// Poisoned returns the route's sticky failure, nil while healthy.
func (cr *ClassRoute) Poisoned() error {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return cr.poison
}

// Heal clears a poisoned route so fresh Joins proceed; the collective
// layer calls it once the membership is healthy again.
func (cr *ClassRoute) Heal() {
	cr.mu.Lock()
	cr.poison = nil
	cr.mu.Unlock()
}

// Ranks returns the surviving participating node ranks in ascending order.
func (cr *ClassRoute) Ranks() []torus.Rank { return *cr.ranks.Load() }

// Parties returns the number of surviving participating nodes.
func (cr *ClassRoute) Parties() int { return len(*cr.ranks.Load()) }

// Tree returns the currently programmed combine tree.
func (cr *ClassRoute) Tree() *torus.Tree { return cr.tree.Load() }

// Depth returns the tree depth in hops; model latency scales with it.
func (cr *ClassRoute) Depth() int { return cr.Tree().Depth() }

// Network owns the classroute slot accounting for a machine.
type Network struct {
	dims torus.Dims
	tele *telemetry.Registry

	// Session traffic counters (paper §V drives collective tuning off
	// exactly these quantities).
	reductions  *telemetry.Counter // reduce/allreduce sessions completed
	broadcasts  *telemetry.Counter // broadcast sessions completed
	barriers    *telemetry.Counter // barrier sessions completed
	combines    *telemetry.Counter // 8-byte words combined by the router ALU
	traversals  *telemetry.Counter // classroute tree nodes visited while combining
	classroutes *telemetry.Counter // classroutes ever programmed

	rebuilds        *telemetry.Counter // classroute trees rebuilt after link failures
	rebuildFailures *telemetry.Counter // rebuilds impossible (rectangle disconnected)
	linksDown       *telemetry.Counter // link failures observed
	nodesDown       *telemetry.Counter // node deaths observed
	sessionsFailed  *telemetry.Counter // in-flight sessions failed by a death

	// Inbox accounting: open sessions consume classroute credits, parked
	// contributions consume receiver memory. The gauges' high-water marks
	// bound both under any flood.
	sessionsOpen *telemetry.Gauge   // sessions joined but not yet retired
	inboxBytes   *telemetry.Gauge   // contribution bytes parked in open sessions
	creditStalls *telemetry.Counter // Joins that blocked on a full session inbox

	mu       sync.Mutex
	inUse    map[torus.Rank]int
	live     map[int]*ClassRoute                // allocated, not yet freed
	down     map[torus.Rank]map[torus.Link]bool // failed directed links
	deadNode map[torus.Rank]bool                // confirmed-dead nodes
	nextID   int

	// joinSite is the stall-sentinel wait site credit-blocked Joins
	// register at; nil until the machine installs a sentinel.
	joinSite atomic.Pointer[watchdog.Site]
}

// SetSentinel registers the network's credit-gate wait site with the
// partition's stall sentinel: a Join parked past the site deadline is
// escalated by poisoning its classroute, so the joiner returns a typed
// abort instead of waiting for a credit that will never free.
func (n *Network) SetSentinel(s *watchdog.Sentinel) {
	if s == nil {
		return
	}
	n.joinSite.Store(s.Site("collnet.join.credit"))
}

// New returns the classroute manager for a machine of the given shape.
func New(dims torus.Dims) *Network {
	tele := telemetry.NewRegistry("collnet")
	return &Network{
		dims:        dims,
		tele:        tele,
		reductions:  tele.Counter("reductions"),
		broadcasts:  tele.Counter("broadcasts"),
		barriers:    tele.Counter("barriers"),
		combines:    tele.Counter("words_combined"),
		traversals:  tele.Counter("classroute_traversals"),
		classroutes: tele.Counter("classroutes_allocated"),

		rebuilds:        tele.Counter("classroute_rebuilds"),
		rebuildFailures: tele.Counter("rebuild_failures"),
		linksDown:       tele.Counter("links_down"),
		nodesDown:       tele.Counter("nodes_down"),
		sessionsFailed:  tele.Counter("sessions_failed"),

		sessionsOpen: tele.Gauge("sessions_open"),
		inboxBytes:   tele.Gauge("inbox_bytes"),
		creditStalls: tele.Counter("session_credit_stalls"),

		inUse:    make(map[torus.Rank]int),
		live:     make(map[int]*ClassRoute),
		down:     make(map[torus.Rank]map[torus.Link]bool),
		deadNode: make(map[torus.Rank]bool),
	}
}

// Telemetry returns the collective network's counter registry; the
// machine layer adopts it into the job-wide registry tree.
func (n *Network) Telemetry() *telemetry.Registry { return n.tele }

// Dims returns the machine shape.
func (n *Network) Dims() torus.Dims { return n.dims }

// ErrNoClassRoute is reported when a node in the rectangle has no free
// classroute slot; callers deoptimize another communicator and retry.
var ErrNoClassRoute = fmt.Errorf("collnet: no free classroute slot (limit %d user slots per node)", UserSlots)

// Allocate programs a classroute over the rectangle, rooted at root, and
// returns it. Every node inside the rectangle must have a free user slot.
func (n *Network) Allocate(rect torus.Rectangle, root torus.Rank) (*ClassRoute, error) {
	if err := rect.Validate(n.dims); err != nil {
		return nil, err
	}
	if !rect.Contains(n.dims.CoordOf(root)) {
		return nil, fmt.Errorf("collnet: root %d outside rectangle %v", root, rect)
	}
	all := rect.Ranks(n.dims)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.deadNode[root] {
		return nil, fmt.Errorf("collnet: root node %d is dead", root)
	}
	// Confirmed-dead nodes inside the rectangle are excluded from the
	// membership: a route allocated after a death spans the survivors.
	ranks := all
	if len(n.deadNode) > 0 {
		ranks = make([]torus.Rank, 0, len(all))
		for _, r := range all {
			if !n.deadNode[r] {
				ranks = append(ranks, r)
			}
		}
	}
	for _, r := range ranks {
		if n.inUse[r] >= UserSlots {
			return nil, ErrNoClassRoute
		}
	}
	for _, r := range ranks {
		n.inUse[r]++
	}
	n.nextID++
	n.classroutes.Inc()
	cr := &ClassRoute{
		ID:       n.nextID,
		Rect:     rect,
		Root:     root,
		net:      n,
		sessions: make(map[uint64]*Session),
	}
	cr.retired = sync.NewCond(&cr.mu)
	cr.ranks.Store(&ranks)
	tree, degraded := n.buildTreeLocked(rect, root)
	cr.tree.Store(tree)
	cr.degraded = degraded
	n.live[cr.ID] = cr
	return cr, nil
}

// buildTreeLocked programs a combine tree for the rectangle, excluding
// dead nodes and avoiding failed links when possible. When failures
// disconnect the rectangle no such tree exists; the route falls back to
// the standard tree and is marked degraded — software combining over
// contributions still completes, only the dead links would be crossed
// by real hardware. Called with n.mu held.
func (n *Network) buildTreeLocked(rect torus.Rectangle, root torus.Rank) (*torus.Tree, bool) {
	faulty := len(n.down) > 0 || len(n.deadNode) > 0
	if faulty {
		if t, err := torus.BuildTreeExcluding(n.dims, rect, root, n.deadLocked, n.downLocked); err == nil {
			return t, false
		}
		n.rebuildFailures.Inc()
	}
	return torus.BuildTree(n.dims, rect, root, 0), faulty
}

func (n *Network) downLocked(r torus.Rank, l torus.Link) bool {
	return n.down[r][l]
}

func (n *Network) deadLocked(r torus.Rank) bool {
	return n.deadNode[r]
}

// HandleLinkDown records a failed cable (both directions die) and
// rebuilds every live classroute whose rectangle spans it. A route the
// failure disconnects keeps its old connected tree and is marked
// degraded — graceful degradation rather than a dead communicator.
// Machine wiring calls this from the fault injector's link-down
// callback; safe for concurrent use with running sessions.
func (n *Network) HandleLinkDown(node torus.Rank, link torus.Link) {
	nb := n.dims.Neighbor(node, link)
	rev := torus.Link{Dim: link.Dim, Dir: -link.Dir}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down[node][link] {
		return
	}
	if n.down[node] == nil {
		n.down[node] = make(map[torus.Link]bool)
	}
	if n.down[nb] == nil {
		n.down[nb] = make(map[torus.Link]bool)
	}
	n.down[node][link] = true
	n.down[nb][rev] = true
	n.linksDown.Inc()
	nc, nbc := n.dims.CoordOf(node), n.dims.CoordOf(nb)
	for _, cr := range n.live {
		// Only rectangles containing both cable endpoints can be affected.
		if !cr.Rect.Contains(nc) || !cr.Rect.Contains(nbc) {
			continue
		}
		if t, err := torus.BuildTreeExcluding(n.dims, cr.Rect, cr.Root, n.deadLocked, n.downLocked); err == nil {
			cr.tree.Store(t)
			cr.degraded = false
			n.rebuilds.Inc()
		} else {
			cr.degraded = true
			n.rebuildFailures.Inc()
		}
	}
}

// HandleNodeDown records a confirmed node death and reconfigures every
// live classroute spanning it: the dead node leaves the membership, the
// root is re-elected (lowest surviving rank) if it died, the combine
// tree is rebuilt over the survivors, and every in-flight session on an
// affected route fails with ErrEpochChanged — surviving ranks' blocked
// collectives return an error instead of waiting forever for a
// contribution that will never come. Subsequent sessions joined on the
// shrunk route complete over the surviving membership. Machine wiring
// calls this from the health monitor's death callback; safe for
// concurrent use with running sessions.
func (n *Network) HandleNodeDown(node torus.Rank) {
	n.mu.Lock()
	if n.deadNode[node] {
		n.mu.Unlock()
		return
	}
	n.deadNode[node] = true
	n.nodesDown.Inc()
	var affected []*ClassRoute
	for _, cr := range n.live {
		ranks := *cr.ranks.Load()
		idx := -1
		for i, r := range ranks {
			if r == node {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		survivors := make([]torus.Rank, 0, len(ranks)-1)
		survivors = append(survivors, ranks[:idx]...)
		survivors = append(survivors, ranks[idx+1:]...)
		if len(survivors) == 0 {
			// Every participant is dead; nothing left to reconfigure.
			cr.ranks.Store(&survivors)
			cr.degraded = true
			continue
		}
		if cr.Root == node {
			cr.Root = survivors[0] // re-elect: lowest surviving rank
		}
		if t, err := torus.BuildTreeExcluding(n.dims, cr.Rect, cr.Root, n.deadLocked, n.downLocked); err == nil {
			cr.tree.Store(t)
			cr.degraded = false
			n.rebuilds.Inc()
		} else {
			cr.degraded = true
			n.rebuildFailures.Inc()
		}
		cr.ranks.Store(&survivors)
		affected = append(affected, cr)
	}
	n.mu.Unlock()
	// Fail in-flight sessions outside n.mu (lock order: cr.mu, then s.mu).
	for _, cr := range affected {
		cr.mu.Lock()
		open := make([]*Session, 0, len(cr.sessions))
		for _, s := range cr.sessions {
			open = append(open, s)
		}
		cr.mu.Unlock()
		for _, s := range open {
			if s.Fail(fmt.Errorf("collnet: node %d died during session %d: %w",
				node, s.seq, health.ErrEpochChanged)) {
				n.sessionsFailed.Inc()
			}
		}
	}
}

// HandleNodeUp reverses HandleNodeDown once the recovery supervisor has
// restored a dead node: the node rejoins the membership of every live
// classroute whose rectangle spans it, combine trees are rebuilt over
// the grown membership, and in-flight sessions on affected routes fail
// with ErrEpochChanged — exactly as they do on a death, because a
// session opened against the shrunk membership would otherwise wait on
// (or be waited on by) a contributor set that no longer matches the
// route. Root election is sticky: the revived node rejoins as a leaf
// even if it was the root before it died (survivors already re-elected,
// and re-electing again would churn every open allocation). Machine
// wiring calls this from the recovery supervisor; safe for concurrent
// use with running sessions.
func (n *Network) HandleNodeUp(node torus.Rank) {
	n.mu.Lock()
	if !n.deadNode[node] {
		n.mu.Unlock()
		return
	}
	delete(n.deadNode, node)
	nc := n.dims.CoordOf(node)
	var affected []*ClassRoute
	for _, cr := range n.live {
		if !cr.Rect.Contains(nc) {
			continue
		}
		ranks := *cr.ranks.Load()
		idx := sort.Search(len(ranks), func(i int) bool { return ranks[i] >= node })
		if idx < len(ranks) && ranks[idx] == node {
			continue // already a member (route allocated after the revival)
		}
		grown := make([]torus.Rank, 0, len(ranks)+1)
		grown = append(grown, ranks[:idx]...)
		grown = append(grown, node)
		grown = append(grown, ranks[idx:]...)
		if cr.Root == node || len(ranks) == 0 {
			cr.Root = grown[0]
		}
		if t, err := torus.BuildTreeExcluding(n.dims, cr.Rect, cr.Root, n.deadLocked, n.downLocked); err == nil {
			cr.tree.Store(t)
			cr.degraded = false
			n.rebuilds.Inc()
		} else {
			cr.degraded = true
			n.rebuildFailures.Inc()
		}
		cr.ranks.Store(&grown)
		affected = append(affected, cr)
	}
	n.mu.Unlock()
	// Fail in-flight sessions outside n.mu (lock order: cr.mu, then s.mu).
	for _, cr := range affected {
		cr.mu.Lock()
		open := make([]*Session, 0, len(cr.sessions))
		for _, s := range cr.sessions {
			open = append(open, s)
		}
		cr.mu.Unlock()
		for _, s := range open {
			if s.Fail(fmt.Errorf("collnet: node %d rejoined during session %d: %w",
				node, s.seq, health.ErrEpochChanged)) {
				n.sessionsFailed.Inc()
			}
		}
	}
}

// DeadNodes reports how many node deaths the network has recorded.
func (n *Network) DeadNodes() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.deadNode)
}

// DownLinks reports how many directed links are currently failed.
func (n *Network) DownLinks() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := 0
	for _, ls := range n.down {
		c += len(ls)
	}
	return c
}

// Degraded reports whether the route is running on a tree that crosses
// failed links because no avoiding tree exists.
func (cr *ClassRoute) Degraded() bool {
	net := cr.net
	if net == nil {
		return cr.degraded
	}
	net.mu.Lock()
	defer net.mu.Unlock()
	return cr.degraded
}

// AllocateWorld programs the machine-wide classroute used by COMM_WORLD.
func (n *Network) AllocateWorld() (*ClassRoute, error) {
	return n.Allocate(n.dims.FullRectangle(), 0)
}

// Free releases the classroute's slots on every participating node.
func (n *Network) Free(cr *ClassRoute) {
	if cr == nil || cr.net != n {
		return
	}
	n.mu.Lock()
	for _, r := range *cr.ranks.Load() {
		if n.inUse[r] > 0 {
			n.inUse[r]--
		}
	}
	delete(n.live, cr.ID)
	n.mu.Unlock()
	// A freed route cannot run collectives; wake anyone parked in Join
	// waiting for a session credit that will now never be granted.
	cr.mu.Lock()
	cr.net = nil
	cr.retired.Broadcast()
	cr.mu.Unlock()
}

// InUse reports how many user classroute slots node r currently occupies.
func (n *Network) InUse(r torus.Rank) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inUse[r]
}
