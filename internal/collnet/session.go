package collnet

import (
	"fmt"
	"sync"

	"pamigo/internal/abort"
	"pamigo/internal/torus"
	"pamigo/internal/watchdog"
)

// Kind distinguishes what a collective session computes.
type Kind int

// Session kinds. Reduce covers both MPI_Reduce and MPI_Allreduce: the
// network always combines to the root and the result is re-broadcast down
// the same tree, so whether every caller reads the result is the caller's
// business. Broadcast forwards the root's contribution unchanged. Barrier
// is a zero-byte combine.
const (
	KindReduce Kind = iota
	KindBroadcast
	KindBarrier
)

// SessionCredits bounds how many sessions may be open on one classroute
// at once — the collective network's inbox. Each open session parks up to
// parties copies of its contribution, so without a bound a participant
// racing ahead of slow peers (joining and contributing to ever-later
// sequence numbers before anyone Waits) grows receiver memory without
// limit. Past the cap, Join blocks until a session retires: the runaway
// producer stalls instead of OOMing the inbox. Blocking collectives hold
// at most two sessions open per route, so the cap only bites pipelined
// (mis)use.
const SessionCredits = 16

// Session is one in-flight collective operation on a classroute. Node
// processes Join the same sequence number, Contribute their local data,
// and Wait for the network result. Combining happens in deterministic
// post-order over the classroute tree, mirroring the fixed hardware wiring
// that makes BG/Q floating-point reductions bit-reproducible.
type Session struct {
	cr      *ClassRoute
	seq     uint64
	kind    Kind
	op      Op
	dt      DType
	nbytes  int
	parties int

	mu      sync.Mutex
	contrib map[torus.Rank][]byte
	parked  int64 // contribution bytes held until the session retires
	arrived int
	waited  int
	done    chan struct{}
	result  []byte
	err     error // set by Fail: membership changed mid-session
}

// Join finds or creates the session with the given sequence number on the
// classroute. All participants must pass identical parameters; mismatches
// indicate a program error and panic, like mismatched collectives on the
// real machine silently corrupting data, only louder.
//
// A Join that blocks on the session-credit gate is abortable: it
// registers with the stall sentinel (when armed) and returns the typed
// poison cause — wrapping abort.ErrAborted — if the route is poisoned
// while it waits, instead of blocking on a credit that will never free.
func (cr *ClassRoute) Join(seq uint64, kind Kind, op Op, dt DType, nbytes int) (*Session, error) {
	if cr.net == nil {
		panic("collnet: Join on a freed classroute")
	}
	var park watchdog.Park
	parked := false
	defer func() {
		if parked {
			park.Leave()
		}
	}()
	cr.mu.Lock()
	defer cr.mu.Unlock()
	for {
		if s, ok := cr.sessions[seq]; ok {
			if s.kind != kind || s.op != op || s.dt != dt || s.nbytes != nbytes {
				panic(fmt.Sprintf("collnet: session %d parameter mismatch: have (%v,%v,%v,%d), got (%v,%v,%v,%d)",
					seq, s.kind, s.op, s.dt, s.nbytes, kind, op, dt, nbytes))
			}
			return s, nil
		}
		if err := cr.poison; err != nil {
			return nil, err
		}
		if len(cr.sessions) < SessionCredits {
			break
		}
		// Inbox full: block until a session retires and frees a credit.
		// Joining an already-open session (above) never blocks, so slow
		// peers can always reach the sessions that will retire first.
		if cr.net != nil {
			cr.net.creditStalls.Inc()
			if st := cr.net.joinSite.Load(); st != nil && !parked {
				parked = true
				st.Enter(&park, func(c *abort.Cause) { cr.Poison(c) })
			}
		}
		cr.retired.Wait()
		if cr.net == nil {
			panic("collnet: classroute freed while waiting for a session credit")
		}
	}
	s := &Session{
		cr:      cr,
		seq:     seq,
		kind:    kind,
		op:      op,
		dt:      dt,
		nbytes:  nbytes,
		parties: cr.Parties(),
		contrib: make(map[torus.Rank][]byte, cr.Parties()),
		done:    make(chan struct{}),
	}
	cr.sessions[seq] = s
	if cr.net != nil {
		cr.net.sessionsOpen.Inc()
	}
	return s, nil
}

// Contribute injects node rank's local contribution. For KindBroadcast
// only the root's data matters (peers may pass nil); for KindBarrier data
// is ignored. Contribute does not block.
func (s *Session) Contribute(rank torus.Rank, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		// The session already failed (a participant died); late
		// contributions from survivors are moot — they learn the failure
		// from WaitErr.
		return
	}
	if _, dup := s.contrib[rank]; dup {
		panic(fmt.Sprintf("collnet: node %d contributed twice to session %d", rank, s.seq))
	}
	stored := data
	if s.kind == KindReduce {
		if len(data) != s.nbytes {
			panic(fmt.Sprintf("collnet: node %d contribution %dB, session expects %dB", rank, len(data), s.nbytes))
		}
		// The router consumes the packet as it flows; keep a private copy so
		// the caller may reuse its buffer immediately, like the MU does.
		stored = append([]byte(nil), data...)
	}
	s.contrib[rank] = stored
	s.parked += int64(len(stored))
	if net := s.cr.net; net != nil {
		net.inboxBytes.Update(int64(len(stored)))
	}
	s.arrived++
	switch s.kind {
	case KindBroadcast:
		// Exactly one node — the broadcast source — contributes data; the
		// router forwards it up to the classroute root and down every
		// branch, so the source need not be the tree root.
		if data != nil {
			if s.result != nil {
				panic(fmt.Sprintf("collnet: two broadcast sources in session %d", s.seq))
			}
			s.result = append([]byte(nil), data...)
			s.count(KindBroadcast)
			close(s.done)
		}
	default:
		if s.arrived == s.parties {
			s.result = s.combineTree()
			s.count(s.kind)
			close(s.done)
		}
	}
}

// count records a completed session in the network's telemetry. Guarded
// against a concurrently freed classroute, which retires the counters.
func (s *Session) count(kind Kind) {
	net := s.cr.net
	if net == nil {
		return
	}
	switch kind {
	case KindBroadcast:
		net.broadcasts.Inc()
	case KindBarrier:
		net.barriers.Inc()
	default:
		net.reductions.Inc()
	}
}

// combineTree folds contributions in post-order over the classroute tree:
// each node combines its children's subtree results into its own
// contribution; the root's value is the network result. Called with s.mu
// held, after every contribution arrived.
func (s *Session) combineTree() []byte {
	if s.kind == KindBarrier || s.nbytes == 0 {
		return nil
	}
	net := s.cr.net
	var fold func(n torus.Rank) []byte
	fold = func(n torus.Rank) []byte {
		if net != nil {
			net.traversals.Inc()
		}
		acc := append([]byte(nil), s.contrib[n]...)
		for _, c := range s.cr.Tree().Children(n) {
			sub := fold(c)
			if err := Combine(s.op, s.dt, acc, sub); err != nil {
				panic("collnet: " + err.Error())
			}
			if net != nil {
				net.combines.Add(int64(len(acc) / 8))
			}
		}
		return acc
	}
	return fold(s.cr.Root)
}

// Done returns a channel closed when the network result is available;
// progress loops poll it via select.
func (s *Session) Done() <-chan struct{} { return s.done }

// Ready reports whether the result is available without blocking.
func (s *Session) Ready() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// Fail completes the session exceptionally: waiters wake with err
// instead of a result. Reports whether this call failed the session (a
// completed or already-failed session is left untouched).
func (s *Session) Fail(err error) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		return false // already completed or failed
	default:
	}
	s.err = err
	close(s.done)
	return true
}

// Err returns the session's failure, or nil. Meaningful once Done is
// closed.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Wait blocks until the result is available and returns it. Every
// participant must call Wait exactly once: the session is retired from the
// classroute when the last participant has read the result. The returned
// buffer is shared — callers copy out of it. Returns nil when the session
// failed; callers on routes that can shrink use WaitErr.
func (s *Session) Wait() []byte {
	res, _ := s.WaitErr()
	return res
}

// WaitErr blocks until the session completes or fails, returning the
// network result or the typed failure (ErrEpochChanged wrapped with the
// dead node). A failed session retires once every *surviving*
// participant has waited — the dead node's Wait never comes.
func (s *Session) WaitErr() ([]byte, error) {
	<-s.done
	s.mu.Lock()
	s.waited++
	parties := s.parties
	if s.err != nil {
		if p := s.cr.Parties(); p < parties {
			parties = p
		}
	}
	last := s.waited >= parties
	res, err := s.result, s.err
	parked := s.parked
	s.mu.Unlock()
	if last {
		s.cr.mu.Lock()
		// A shrunken failed session can compute last more than once (the
		// quorum drops while stragglers still Wait); retire exactly once
		// so the credit and inbox accounting stay conserved.
		if _, open := s.cr.sessions[s.seq]; open {
			delete(s.cr.sessions, s.seq)
			if net := s.cr.net; net != nil {
				net.sessionsOpen.Dec()
				net.inboxBytes.Update(-parked)
			}
			s.cr.retired.Broadcast()
		}
		s.cr.mu.Unlock()
	}
	return res, err
}

// GIBarrier is the Global Interrupt network barrier: a reusable,
// generation-counted barrier across the nodes of a partition (paper §IV.B:
// "we use the fast L2 atomics and the global interrupt network to provide
// very low-overhead barrier across the entire machine").
//
// Like the L2 barrier, the GI barrier is poisonable: Poison releases
// every parked party of the in-flight generation with the typed cause
// and makes later Awaits fail fast until Heal.
type GIBarrier struct {
	parties int

	mu      sync.Mutex
	arrived int
	gen     *giGen
	poison  error // sticky: set by Poison, cleared by Heal
}

// giGen is one barrier generation: its completion channel and the error
// (nil on a normal completion) every waiter of that generation returns.
type giGen struct {
	ch  chan struct{}
	err error
}

// NewGIBarrier returns a barrier for the given number of nodes.
func NewGIBarrier(parties int) *GIBarrier {
	if parties < 1 {
		panic("collnet: GI barrier needs at least one party")
	}
	return &GIBarrier{parties: parties, gen: &giGen{ch: make(chan struct{})}}
}

// Parties returns the number of participating nodes.
func (b *GIBarrier) Parties() int { return b.parties }

// Await blocks until all parties of the current generation arrive, or
// until the barrier is poisoned — then every party of the generation
// (parked and yet-to-arrive) gets the typed cause.
func (b *GIBarrier) Await() error {
	b.mu.Lock()
	if b.poison != nil {
		err := b.poison
		b.mu.Unlock()
		return err
	}
	b.arrived++
	if b.arrived == b.parties {
		g := b.gen
		close(g.ch)
		b.arrived = 0
		b.gen = &giGen{ch: make(chan struct{})}
		b.mu.Unlock()
		return g.err
	}
	g := b.gen
	b.mu.Unlock()
	<-g.ch
	return g.err
}

// Poison fails the in-flight generation with err and latches the cause:
// parked parties wake with it, and later Awaits fail fast until Heal.
// The first cause sticks.
func (b *GIBarrier) Poison(err error) {
	if err == nil {
		panic("collnet: GIBarrier.Poison(nil)")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poison != nil {
		return
	}
	b.poison = err
	g := b.gen
	g.err = err
	close(g.ch)
	b.arrived = 0
	b.gen = &giGen{ch: make(chan struct{})}
}

// Poisoned returns the latched cause, or nil.
func (b *GIBarrier) Poisoned() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.poison
}

// Heal clears the poison so the barrier is usable again; the recovery
// layer calls it once membership is consistent. Idempotent.
func (b *GIBarrier) Heal() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.poison = nil
}
