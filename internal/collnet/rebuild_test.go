package collnet

import (
	"testing"

	"pamigo/internal/torus"
)

func collCounter(t *testing.T, n *Network, name string) int64 {
	t.Helper()
	v, _ := n.Telemetry().Snapshot().Counter(name)
	return v
}

// treeAvoids checks that no parent-child edge of the route's tree
// crosses the given dead cable (in either direction).
func treeAvoids(t *testing.T, dims torus.Dims, cr *ClassRoute, a torus.Rank, l torus.Link) {
	t.Helper()
	b := dims.Neighbor(a, l)
	tree := cr.Tree()
	for _, r := range cr.Ranks() {
		if r == cr.Root {
			continue
		}
		p := tree.Parent(r)
		if (p == a && r == b) || (p == b && r == a) {
			t.Fatalf("tree edge %d-%d rides the dead cable", p, r)
		}
	}
}

// runAllreduce drives one int64-sum session over every rank and checks
// the result.
func runAllreduce(t *testing.T, cr *ClassRoute, seq uint64) {
	t.Helper()
	var want int64
	for _, r := range cr.Ranks() {
		want += int64(r) + 1
	}
	s, _ := cr.Join(seq, KindReduce, OpAdd, Int64, 8)
	for _, r := range cr.Ranks() {
		s.Contribute(r, EncodeInt64s([]int64{int64(r) + 1}))
	}
	for range cr.Ranks() {
		got := DecodeInt64s(s.Wait())
		if got[0] != want {
			t.Fatalf("allreduce = %d, want %d", got[0], want)
		}
	}
}

func TestHandleLinkDownRebuildsLiveRoutes(t *testing.T) {
	dims := torus.Dims{3, 3, 1, 1, 1}
	n := New(dims)
	cr, err := n.AllocateWorld()
	if err != nil {
		t.Fatal(err)
	}
	runAllreduce(t, cr, 1)

	dead := torus.Link{Dim: torus.DimA, Dir: +1}
	n.HandleLinkDown(0, dead)
	if v := collCounter(t, n, "classroute_rebuilds"); v != 1 {
		t.Errorf("classroute_rebuilds = %d, want 1", v)
	}
	if cr.Degraded() {
		t.Error("route degraded though an avoiding tree exists")
	}
	treeAvoids(t, dims, cr, 0, dead)
	if got := cr.Tree().Nodes(); got != dims.Nodes() {
		t.Errorf("rebuilt tree spans %d of %d nodes", got, dims.Nodes())
	}
	// Collectives still work on the rebuilt tree.
	runAllreduce(t, cr, 2)

	// The same failure reported twice is idempotent.
	n.HandleLinkDown(0, dead)
	if v := collCounter(t, n, "links_down"); v != 1 {
		t.Errorf("links_down = %d after duplicate report, want 1", v)
	}
}

func TestHandleLinkDownSkipsUnaffectedRoutes(t *testing.T) {
	dims := torus.Dims{4, 2, 1, 1, 1}
	n := New(dims)
	// A route over the B=1 row only.
	cr, err := n.Allocate(torus.Rectangle{
		Lo: torus.Coord{0, 1, 0, 0, 0}, Hi: torus.Coord{3, 1, 0, 0, 0},
	}, dims.RankOf(torus.Coord{0, 1, 0, 0, 0}))
	if err != nil {
		t.Fatal(err)
	}
	before := cr.Tree()
	// Fail a cable in the B=0 row; the route cannot be affected.
	n.HandleLinkDown(0, torus.Link{Dim: torus.DimA, Dir: +1})
	if cr.Tree() != before {
		t.Error("unaffected route was rebuilt")
	}
	if v := collCounter(t, n, "classroute_rebuilds"); v != 0 {
		t.Errorf("classroute_rebuilds = %d, want 0", v)
	}
}

func TestDisconnectedRectangleDegradesGracefully(t *testing.T) {
	dims := torus.Dims{2, 1, 1, 1, 1}
	n := New(dims)
	cr, err := n.AllocateWorld()
	if err != nil {
		t.Fatal(err)
	}
	// The only in-rectangle cable dies: no avoiding tree exists.
	n.HandleLinkDown(0, torus.Link{Dim: torus.DimA, Dir: +1})
	if !cr.Degraded() {
		t.Error("disconnected route not marked degraded")
	}
	if v := collCounter(t, n, "rebuild_failures"); v == 0 {
		t.Error("rebuild failure not counted")
	}
	// Software combining still completes on the stale tree.
	runAllreduce(t, cr, 7)
}

func TestAllocateAfterLinkDownAvoidsDeadLinks(t *testing.T) {
	dims := torus.Dims{3, 3, 1, 1, 1}
	n := New(dims)
	dead := torus.Link{Dim: torus.DimB, Dir: +1}
	n.HandleLinkDown(4, dead) // interior node of the 3x3 face
	cr, err := n.AllocateWorld()
	if err != nil {
		t.Fatal(err)
	}
	if cr.Degraded() {
		t.Error("fresh allocation degraded though avoiding tree exists")
	}
	treeAvoids(t, dims, cr, 4, dead)
	runAllreduce(t, cr, 1)
	if n.DownLinks() != 2 {
		t.Errorf("DownLinks = %d, want 2 (both directions)", n.DownLinks())
	}
}
