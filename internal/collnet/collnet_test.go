package collnet

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"pamigo/internal/torus"
)

var dims = torus.Dims{2, 2, 2, 1, 1}

func TestCombineInt64(t *testing.T) {
	acc := EncodeInt64s([]int64{1, -5, 7})
	src := EncodeInt64s([]int64{2, 3, -7})
	if err := Combine(OpAdd, Int64, acc, src); err != nil {
		t.Fatal(err)
	}
	got := DecodeInt64s(acc)
	want := []int64{3, -2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("add: got %v", got)
		}
	}
}

func TestCombineMinMax(t *testing.T) {
	acc := EncodeInt64s([]int64{1, 9})
	if err := Combine(OpMin, Int64, acc, EncodeInt64s([]int64{-4, 10})); err != nil {
		t.Fatal(err)
	}
	if got := DecodeInt64s(acc); got[0] != -4 || got[1] != 9 {
		t.Fatalf("min: got %v", got)
	}
	acc = EncodeInt64s([]int64{1, 9})
	if err := Combine(OpMax, Int64, acc, EncodeInt64s([]int64{-4, 10})); err != nil {
		t.Fatal(err)
	}
	if got := DecodeInt64s(acc); got[0] != 1 || got[1] != 10 {
		t.Fatalf("max: got %v", got)
	}
}

func TestCombineFloat64(t *testing.T) {
	acc := EncodeFloat64s([]float64{1.5, -2.25})
	if err := Combine(OpAdd, Float64, acc, EncodeFloat64s([]float64{0.5, 2.25})); err != nil {
		t.Fatal(err)
	}
	got := DecodeFloat64s(acc)
	if got[0] != 2.0 || got[1] != 0.0 {
		t.Fatalf("float add: got %v", got)
	}
}

func TestCombineUint64Ops(t *testing.T) {
	acc := EncodeInt64s([]int64{5})
	if err := Combine(OpMin, Uint64, acc, EncodeInt64s([]int64{3})); err != nil {
		t.Fatal(err)
	}
	if got := DecodeInt64s(acc)[0]; got != 3 {
		t.Fatalf("uint min = %d", got)
	}
	acc = EncodeInt64s([]int64{0x0f})
	if err := Combine(OpBitOR, Uint64, acc, EncodeInt64s([]int64{0xf0})); err != nil {
		t.Fatal(err)
	}
	if got := DecodeInt64s(acc)[0]; got != 0xff {
		t.Fatalf("bor = %#x", got)
	}
	acc = EncodeInt64s([]int64{0x0f})
	if err := Combine(OpBitAND, Uint64, acc, EncodeInt64s([]int64{0x03})); err != nil {
		t.Fatal(err)
	}
	if got := DecodeInt64s(acc)[0]; got != 0x03 {
		t.Fatalf("band = %#x", got)
	}
}

func TestCombineErrors(t *testing.T) {
	if err := Combine(OpAdd, Int64, make([]byte, 8), make([]byte, 16)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := Combine(OpAdd, Int64, make([]byte, 7), make([]byte, 7)); err == nil {
		t.Fatal("unaligned length accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		got := DecodeFloat64s(EncodeFloat64s(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] && !(math.IsNaN(got[i]) && math.IsNaN(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateAndFree(t *testing.T) {
	n := New(dims)
	cr, err := n.AllocateWorld()
	if err != nil {
		t.Fatal(err)
	}
	if cr.Parties() != dims.Nodes() {
		t.Fatalf("world route has %d parties", cr.Parties())
	}
	if got := n.InUse(0); got != 1 {
		t.Fatalf("InUse = %d after allocate", got)
	}
	n.Free(cr)
	if got := n.InUse(0); got != 0 {
		t.Fatalf("InUse = %d after free", got)
	}
}

func TestAllocateRejectsBadRoot(t *testing.T) {
	n := New(dims)
	rect := torus.Rectangle{Lo: torus.Coord{0, 0, 0, 0, 0}, Hi: torus.Coord{0, 1, 1, 0, 0}}
	outside := dims.RankOf(torus.Coord{1, 0, 0, 0, 0})
	if _, err := n.Allocate(rect, outside); err == nil {
		t.Fatal("root outside rectangle accepted")
	}
}

func TestClassRouteExhaustion(t *testing.T) {
	n := New(dims)
	var routes []*ClassRoute
	for i := 0; i < UserSlots; i++ {
		cr, err := n.AllocateWorld()
		if err != nil {
			t.Fatalf("allocation %d failed: %v", i, err)
		}
		routes = append(routes, cr)
	}
	if _, err := n.AllocateWorld(); err != ErrNoClassRoute {
		t.Fatalf("over-allocation returned %v, want ErrNoClassRoute", err)
	}
	// Deoptimize one and the slot becomes reusable.
	n.Free(routes[0])
	if _, err := n.AllocateWorld(); err != nil {
		t.Fatalf("allocation after free failed: %v", err)
	}
}

func TestDisjointRectanglesDontCompete(t *testing.T) {
	n := New(dims)
	left := torus.Rectangle{Lo: torus.Coord{0, 0, 0, 0, 0}, Hi: torus.Coord{0, 1, 1, 0, 0}}
	right := torus.Rectangle{Lo: torus.Coord{1, 0, 0, 0, 0}, Hi: torus.Coord{1, 1, 1, 0, 0}}
	for i := 0; i < UserSlots; i++ {
		if _, err := n.Allocate(left, dims.RankOf(left.Lo)); err != nil {
			t.Fatalf("left %d: %v", i, err)
		}
	}
	// Left column is full, but the right column must still have slots.
	if _, err := n.Allocate(right, dims.RankOf(right.Lo)); err != nil {
		t.Fatalf("disjoint rectangle blocked: %v", err)
	}
}

func runSession(t *testing.T, cr *ClassRoute, kind Kind, op Op, dt DType, contribs map[torus.Rank][]byte) []byte {
	t.Helper()
	nbytes := 0
	for _, b := range contribs {
		nbytes = len(b)
		break
	}
	if kind != KindReduce {
		nbytes = len(contribs[cr.Root])
	}
	var wg sync.WaitGroup
	results := make(map[torus.Rank][]byte)
	var mu sync.Mutex
	for _, r := range cr.Ranks() {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, _ := cr.Join(7, kind, op, dt, nbytes)
			if kind != KindBroadcast || r == cr.Root {
				s.Contribute(r, contribs[r])
			}
			res := s.Wait()
			mu.Lock()
			results[r] = res
			mu.Unlock()
		}()
	}
	wg.Wait()
	var first []byte
	for _, r := range cr.Ranks() {
		if first == nil {
			first = results[r]
		}
		got := results[r]
		if len(got) != len(first) {
			t.Fatalf("node %d saw a result of different length", r)
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("node %d saw a different result", r)
			}
		}
	}
	return first
}

func TestSessionAllreduceSum(t *testing.T) {
	n := New(dims)
	cr, err := n.AllocateWorld()
	if err != nil {
		t.Fatal(err)
	}
	contribs := make(map[torus.Rank][]byte)
	var want int64
	for _, r := range cr.Ranks() {
		contribs[r] = EncodeInt64s([]int64{int64(r) + 1})
		want += int64(r) + 1
	}
	res := runSession(t, cr, KindReduce, OpAdd, Int64, contribs)
	if got := DecodeInt64s(res)[0]; got != want {
		t.Fatalf("allreduce sum = %d, want %d", got, want)
	}
}

func TestSessionReduceMinMaxFloat(t *testing.T) {
	n := New(dims)
	cr, err := n.AllocateWorld()
	if err != nil {
		t.Fatal(err)
	}
	contribs := make(map[torus.Rank][]byte)
	for _, r := range cr.Ranks() {
		contribs[r] = EncodeFloat64s([]float64{float64(r), -float64(r)})
	}
	res := runSession(t, cr, KindReduce, OpMax, Float64, contribs)
	vals := DecodeFloat64s(res)
	if vals[0] != float64(dims.Nodes()-1) || vals[1] != 0 {
		t.Fatalf("reduce max = %v", vals)
	}
}

func TestSessionBroadcast(t *testing.T) {
	n := New(dims)
	cr, err := n.AllocateWorld()
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("classroute broadcast payload")
	contribs := map[torus.Rank][]byte{cr.Root: payload}
	res := runSession(t, cr, KindBroadcast, OpAdd, Uint64, contribs)
	if string(res) != string(payload) {
		t.Fatalf("broadcast result %q", res)
	}
}

func TestSessionBarrier(t *testing.T) {
	n := New(dims)
	cr, err := n.AllocateWorld()
	if err != nil {
		t.Fatal(err)
	}
	contribs := make(map[torus.Rank][]byte)
	for _, r := range cr.Ranks() {
		contribs[r] = nil
	}
	res := runSession(t, cr, KindBarrier, OpAdd, Uint64, contribs)
	if res != nil {
		t.Fatalf("barrier returned data: %v", res)
	}
}

func TestSessionRetiredAfterUse(t *testing.T) {
	n := New(dims)
	cr, err := n.AllocateWorld()
	if err != nil {
		t.Fatal(err)
	}
	contribs := make(map[torus.Rank][]byte)
	for _, r := range cr.Ranks() {
		contribs[r] = EncodeInt64s([]int64{1})
	}
	runSession(t, cr, KindReduce, OpAdd, Int64, contribs)
	cr.mu.Lock()
	live := len(cr.sessions)
	cr.mu.Unlock()
	if live != 0 {
		t.Fatalf("%d sessions still live after completion", live)
	}
}

func TestSessionDeterministicFloatOrder(t *testing.T) {
	// The tree fold must make FP sums identical across repetitions even
	// though goroutines contribute in arbitrary order.
	n := New(torus.Dims{2, 2, 2, 2, 1})
	cr, err := n.AllocateWorld()
	if err != nil {
		t.Fatal(err)
	}
	contribs := make(map[torus.Rank][]byte)
	for _, r := range cr.Ranks() {
		contribs[r] = EncodeFloat64s([]float64{1e16, 1.0, -1e16}[0:1])
	}
	// Use values whose sum depends on order: r-th contribution 1/(r+1).
	for _, r := range cr.Ranks() {
		contribs[r] = EncodeFloat64s([]float64{1.0 / float64(r+1)})
	}
	first := runSession(t, cr, KindReduce, OpAdd, Float64, contribs)
	for trial := 0; trial < 5; trial++ {
		cr2, err := n.AllocateWorld()
		if err != nil {
			t.Fatal(err)
		}
		got := runSession(t, cr2, KindReduce, OpAdd, Float64, contribs)
		if DecodeFloat64s(got)[0] != DecodeFloat64s(first)[0] {
			t.Fatalf("trial %d: FP reduction not reproducible", trial)
		}
		n.Free(cr2)
	}
}

func TestJoinParameterMismatchPanics(t *testing.T) {
	n := New(dims)
	cr, err := n.AllocateWorld()
	if err != nil {
		t.Fatal(err)
	}
	cr.Join(1, KindReduce, OpAdd, Int64, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Join did not panic")
		}
	}()
	cr.Join(1, KindReduce, OpMax, Int64, 8)
}

func TestGIBarrier(t *testing.T) {
	const parties = 8
	const rounds = 100
	b := NewGIBarrier(parties)
	var mu sync.Mutex
	counts := make([]int, rounds)
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				mu.Lock()
				counts[r]++
				mu.Unlock()
				b.Await()
				mu.Lock()
				c := counts[r]
				mu.Unlock()
				if c != parties {
					t.Errorf("round %d released with %d arrivals", r, c)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestGIBarrierSingleParty(t *testing.T) {
	b := NewGIBarrier(1)
	for i := 0; i < 3; i++ {
		b.Await()
	}
	if b.Parties() != 1 {
		t.Fatal("Parties != 1")
	}
}
