package netsim

import (
	"math"
	"testing"

	"pamigo/internal/model"
	"pamigo/internal/sim"
	"pamigo/internal/torus"
)

var dims333 = torus.Dims{3, 3, 3, 3, 3}

func TestSingleMessageBandwidth(t *testing.T) {
	// A large single-flow message must achieve ~link payload bandwidth.
	p := DefaultParams()
	n, err := New(dims333, p)
	if err != nil {
		t.Fatal(err)
	}
	const size = 4 << 20
	var done sim.Time
	if err := n.SendMessage(0, 0, dims333.Neighbor(0, torus.Link{Dim: 0, Dir: 1}), size, func(d sim.Time) { done = d }); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if done == 0 {
		t.Fatal("completion callback never fired")
	}
	tput := float64(size) / done.Seconds()
	if tput < 0.95*p.LinkBytesPerSec || tput > 1.01*p.LinkBytesPerSec {
		t.Fatalf("single flow throughput %.0f B/s, want ~%.0f", tput, p.LinkBytesPerSec)
	}
}

func TestSmallMessageLatency(t *testing.T) {
	// A minimal packet's latency is injection + hops × (serialization +
	// router latency), store-and-forward.
	p := DefaultParams()
	n, _ := New(dims333, p)
	dst := torus.Rank(dims333.RankOf(torus.Coord{1, 1, 0, 0, 0})) // 2 hops
	var done sim.Time
	if err := n.SendMessage(0, 0, dst, 1, func(d sim.Time) { done = d }); err != nil {
		t.Fatal(err)
	}
	n.Run()
	ser := sim.BytesTime(1, p.LinkBytesPerSec)
	want := p.InjectOverhead + 2*(ser+p.HopLatency)
	if done != want {
		t.Fatalf("2-hop latency %v, want %v", done, want)
	}
}

func TestTwoFlowsShareALink(t *testing.T) {
	// Two equal flows forced through the same directed link each get half
	// the bandwidth: completion takes ~2x a single flow.
	p := DefaultParams()
	size := 1 << 20
	single, err := singleFlowTime(p, size, 1)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := singleFlowTime(p, size, 2)
	if err != nil {
		t.Fatal(err)
	}
	ratio := shared.Seconds() / single.Seconds()
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("sharing ratio %.2f, want ~2", ratio)
	}
}

// singleFlowTime sends `flows` messages over the same first link (same
// src, same dst) and returns the completion time of the whole batch.
func singleFlowTime(p Params, size, flows int) (sim.Time, error) {
	n, err := New(dims333, p)
	if err != nil {
		return 0, err
	}
	dst := dims333.Neighbor(0, torus.Link{Dim: 0, Dir: 1})
	for i := 0; i < flows; i++ {
		if err := n.SendMessage(0, 0, dst, size, nil); err != nil {
			return 0, err
		}
	}
	return n.Run(), nil
}

func TestOppositeDirectionsIndependent(t *testing.T) {
	// A link's two directions are independent resources: a bidirectional
	// exchange takes the same time as either direction alone.
	p := DefaultParams()
	size := 1 << 20
	n, _ := New(dims333, p)
	dst := dims333.Neighbor(0, torus.Link{Dim: 0, Dir: 1})
	n.SendMessage(0, 0, dst, size, nil)
	n.SendMessage(0, dst, 0, size, nil)
	bidir := n.Run()
	single, _ := singleFlowTime(p, size, 1)
	if float64(bidir) > 1.05*float64(single) {
		t.Fatalf("bidirectional %v much slower than unidirectional %v", bidir, single)
	}
}

func TestNeighborExchangeScalesWithLinks(t *testing.T) {
	// The DES derivation of Table 3's rendezvous column: aggregate
	// throughput grows ~linearly as the exchange spreads over more links.
	p := DefaultParams()
	const size = 1 << 20
	tput := map[int]float64{}
	for _, nb := range []int{1, 2, 4, 10} {
		v, err := NeighborExchange(dims333, p, nb, size, 2)
		if err != nil {
			t.Fatal(err)
		}
		tput[nb] = v
	}
	if r := tput[2] / tput[1]; r < 1.9 || r > 2.1 {
		t.Fatalf("2-neighbor scaling %.2f, want ~2", r)
	}
	if r := tput[10] / tput[1]; r < 9 || r > 10.5 {
		t.Fatalf("10-neighbor scaling %.2f, want ~10", r)
	}
	// Absolute: one neighbor moves 2 x 1.8 GB/s = 3600 MB/s of payload.
	if tput[1] < 3400 || tput[1] > 3650 {
		t.Fatalf("1-neighbor exchange %.0f MB/s, want ~3550", tput[1])
	}
}

func TestNeighborExchangeMatchesModel(t *testing.T) {
	// Cross-check the two derivations of Table 3's rendezvous column:
	// closed-form model versus packet-level DES. The model folds in a
	// ~90-93% software-gap efficiency the DES does not simulate, so the
	// DES should land a few percent above the model, never below ~0.85x.
	p := DefaultParams()
	mp := model.Default()
	for _, nb := range []int{1, 4, 10} {
		des, err := NeighborExchange(dims333, p, nb, 1<<20, 2)
		if err != nil {
			t.Fatal(err)
		}
		_, rdvModel := model.Table3Throughput(mp, nb)
		ratio := des / rdvModel
		if ratio < 1.0 || ratio > 1.15 {
			t.Fatalf("neighbors=%d: DES %.0f vs model %.0f (ratio %.2f)", nb, des, rdvModel, ratio)
		}
	}
}

func TestUniformAllToAllBalanced(t *testing.T) {
	// Dimension-ordered routing on a symmetric torus balances uniform
	// all-to-all traffic across links.
	end, max, mean, err := UniformAllToAll(torus.Dims{3, 3, 3, 1, 1}, DefaultParams(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 || mean <= 0 {
		t.Fatal("degenerate simulation")
	}
	if max/mean > 1.6 {
		t.Fatalf("link load imbalance %.2f (max %.3f mean %.3f)", max/mean, max, mean)
	}
}

func TestValidation(t *testing.T) {
	p := DefaultParams()
	if _, err := New(torus.Dims{0, 1, 1, 1, 1}, p); err == nil {
		t.Error("invalid dims accepted")
	}
	if _, err := New(dims333, Params{}); err == nil {
		t.Error("zero bandwidth accepted")
	}
	n, _ := New(dims333, p)
	if err := n.SendMessage(0, 3, 3, 10, nil); err == nil {
		t.Error("self message accepted")
	}
	if _, err := NeighborExchange(torus.Dims{2, 1, 1, 1, 1}, p, 5, 10, 1); err == nil {
		t.Error("too many neighbors accepted")
	}
}

func TestStatsAndUtilization(t *testing.T) {
	p := DefaultParams()
	n, _ := New(dims333, p)
	dst := dims333.Neighbor(0, torus.Link{Dim: 1, Dir: 1})
	n.SendMessage(0, 0, dst, 1024, nil)
	end := n.Run()
	pkts, bytes := n.Stats()
	if pkts != 2 || bytes != 1024 {
		t.Fatalf("stats (%d,%d)", pkts, bytes)
	}
	util := n.LinkUtilization(end)
	// Exactly one directed link used, at ~full utilization minus the
	// injection and hop-latency tail.
	busy := 0
	for _, u := range util {
		if u > 0 {
			busy++
			if u < 0.5 || u > 1.0 {
				t.Fatalf("utilization %.2f out of range", u)
			}
		}
	}
	if busy != 1 {
		t.Fatalf("%d links busy, want 1", busy)
	}
	if math.IsNaN(end.Seconds()) {
		t.Fatal("bad end time")
	}
}
