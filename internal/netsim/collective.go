package netsim

import (
	"fmt"

	"pamigo/internal/mu"
	"pamigo/internal/sim"
	"pamigo/internal/torus"
)

// CollectiveParams extends the fabric constants with the combining
// router's ALU cost.
type CollectiveParams struct {
	Params
	// ALUPerPacket is the combine time a router adds per packet merged.
	ALUPerPacket sim.Time
	// SoftwareBase is the end-host software cost (injection setup at the
	// leaves, reception at the end), counted once.
	SoftwareBase sim.Time
	// GIPerHop and GIBase describe the global-interrupt barrier wave,
	// which rides dedicated wires with no payload or ALU.
	GIPerHop sim.Time
	GIBase   sim.Time
}

// DefaultCollectiveParams matches the model package's allreduce anchors.
func DefaultCollectiveParams() CollectiveParams {
	return CollectiveParams{
		Params:       DefaultParams(),
		ALUPerPacket: 35 * sim.Nanosecond,
		SoftwareBase: 3550 * sim.Nanosecond,
		GIPerHop:     40 * sim.Nanosecond,
		GIBase:       900 * sim.Nanosecond,
	}
}

// AllreduceLatency derives the latency of a size-byte allreduce over the
// machine's classroute tree by walking the actual spanning tree the
// collective network would program (torus.BuildTree over the full
// rectangle): contributions combine upward — a parent forwards a packet
// only after the matching packet from every child has arrived and passed
// the ALU — then the result streams back down the same tree. Multi-packet
// operations pipeline: packet k leaves a node one serialization after
// packet k-1.
//
// This is the independent, structural derivation of the figure 7 curve;
// internal/model's closed form is calibrated against the paper, and the
// tests cross-check the two shapes.
func AllreduceLatency(dims torus.Dims, p CollectiveParams, size int) (sim.Time, error) {
	if err := dims.Validate(); err != nil {
		return 0, err
	}
	tree := torus.BuildTree(dims, dims.FullRectangle(), 0, 0)
	npkts := (size + mu.MaxPayload - 1) / mu.MaxPayload
	if npkts == 0 {
		npkts = 1
	}
	lastPayload := size - (npkts-1)*mu.MaxPayload
	if lastPayload <= 0 {
		lastPayload = 1
	}
	serFull := sim.BytesTime(mu.MaxPayload, p.LinkBytesPerSec)
	firstPayload := size
	if firstPayload > mu.MaxPayload {
		firstPayload = mu.MaxPayload
	}
	if firstPayload < 1 {
		firstPayload = 1
	}
	// The first (possibly only) packet carries min(size, MaxPayload)
	// bytes; an 8-byte allreduce serializes 8 bytes per hop, not a full
	// packet.
	serFirst := sim.BytesTime(int64(firstPayload), p.LinkBytesPerSec)
	perHop := p.HopLatency + p.ALUPerPacket

	// Upward combine: readyUp(n) = time node n can emit its subtree's
	// first packet = max over children of (readyUp(c) + ser + perHop).
	// Memoized post-order over the tree.
	memo := make(map[torus.Rank]sim.Time, dims.Nodes())
	var readyUp func(n torus.Rank) sim.Time
	readyUp = func(n torus.Rank) sim.Time {
		if t, ok := memo[n]; ok {
			return t
		}
		var t sim.Time
		for _, c := range tree.Children(n) {
			arr := readyUp(c) + serFirst + perHop
			if arr > t {
				t = arr
			}
		}
		memo[n] = t
		return t
	}
	upFirst := readyUp(tree.Root)

	// Downward broadcast of the first packet: tree depth hops.
	depth := sim.Time(tree.Depth())
	downFirst := depth * (serFirst + p.HopLatency)

	// Remaining packets pipeline behind the first at one serialization
	// per packet; the last (possibly short) packet closes the operation.
	pipeline := sim.Time(0)
	if npkts > 1 {
		pipeline = sim.Time(npkts-2)*serFull + sim.BytesTime(int64(lastPayload), p.LinkBytesPerSec)
	}
	return p.SoftwareBase + upFirst + downFirst + pipeline, nil
}

// BarrierLatency is the zero-byte special case: a single up/down wave of
// minimal packets with no payload serialization to speak of.
func BarrierLatency(dims torus.Dims, p CollectiveParams) (sim.Time, error) {
	if err := dims.Validate(); err != nil {
		return 0, err
	}
	tree := torus.BuildTree(dims, dims.FullRectangle(), 0, 0)
	memo := make(map[torus.Rank]sim.Time, dims.Nodes())
	var readyUp func(n torus.Rank) sim.Time
	readyUp = func(n torus.Rank) sim.Time {
		if t, ok := memo[n]; ok {
			return t
		}
		var t sim.Time
		for _, c := range tree.Children(n) {
			if arr := readyUp(c) + p.GIPerHop; arr > t {
				t = arr
			}
		}
		memo[n] = t
		return t
	}
	up := readyUp(tree.Root)
	down := sim.Time(tree.Depth()) * p.GIPerHop
	return p.GIBase + up + down, nil
}

// AllreduceThroughput derives streaming allreduce throughput (MB/s) for
// a size-byte operation from the pipelined latency.
func AllreduceThroughput(dims torus.Dims, p CollectiveParams, size int) (float64, error) {
	lat, err := AllreduceLatency(dims, p, size)
	if err != nil {
		return 0, err
	}
	if lat <= 0 {
		return 0, fmt.Errorf("netsim: non-positive latency")
	}
	return float64(size) / lat.Seconds() / 1e6, nil
}
