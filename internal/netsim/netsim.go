// Package netsim is a packet-level discrete-event simulator of the BG/Q
// 5D torus data plane: deterministic dimension-ordered routes over
// per-direction link resources with finite bandwidth and per-hop router
// latency. Where internal/model uses closed-form cost equations, netsim
// *derives* link-level results — bandwidth sharing, neighbor-exchange
// scaling, route load balance — by actually moving packets through
// contended links, and the model tests cross-check the two.
//
// The simulator is intentionally at the granularity the MU presents to
// software: 512-byte payload packets with 32-byte headers, store-and-
// forward per hop (a conservative stand-in for the hardware's cut-through
// that preserves bandwidth results exactly and inflates only the
// per-packet latency term by hops×serialization).
//
// Execution is event-driven over the backend-neutral internal/sim/des
// interface: every packet advances hop by hop as events on the logical
// process that owns its current node (node rank mod LP count). New runs
// on the sequential oracle; NewOn accepts any backend, in particular the
// optimistic parallel engine internal/sim/warp — the per-node resource
// sharding, journaled reservations, and Commit-deferred completion
// callbacks below are exactly what lets the same model roll back cleanly
// there. The cross-engine test suite asserts both backends produce
// byte-identical packet schedules.
package netsim

import (
	"errors"
	"fmt"

	"pamigo/internal/mu"
	"pamigo/internal/sim"
	"pamigo/internal/sim/des"
	"pamigo/internal/telemetry"
	"pamigo/internal/torus"
)

// ErrPartitioned means failed links disconnect source from destination:
// no route-around exists.
var ErrPartitioned = errors.New("netsim: failed links partition the torus")

// Params are the physical constants of the simulated fabric.
type Params struct {
	// LinkBytesPerSec is the per-link per-direction payload bandwidth.
	LinkBytesPerSec float64
	// HopLatency is the router traversal latency per hop.
	HopLatency sim.Time
	// InjectOverhead is the MU descriptor processing time per packet at
	// the source.
	InjectOverhead sim.Time
}

// DefaultParams matches the paper's fabric: 1.8 GB/s payload per link
// direction, ~40 ns routers.
func DefaultParams() Params {
	return Params{
		LinkBytesPerSec: 1.8e9,
		HopLatency:      40 * sim.Nanosecond,
		InjectOverhead:  25 * sim.Nanosecond,
	}
}

type linkKey struct {
	node torus.Rank
	link torus.Link
}

// message is one SendMessage call's run-time state. Route, resources and
// owner LPs are resolved eagerly at SendMessage time — the resource maps
// are never touched during the run, so hop events on different LPs share
// nothing but the per-node resources they own. The arrival bookkeeping
// at the bottom belongs exclusively to the destination's LP.
type message struct {
	size  int
	npkts int

	inject *sim.Resource
	// links[h] carries hop h; hopLP[h] is the LP owning its upstream
	// node (where the hop's reservation event executes); nextLP[h] is
	// where the packet goes after hop h (the next hop's LP, or the
	// destination LP for the last hop).
	links  []*sim.Resource
	hopLP  []int32
	nextLP []int32

	onDone func(sim.Time)

	// Owned by the destination LP, mutated under journal.
	arrived int
	lastArr sim.Time
}

// Event payloads: plain values, as the optimistic backend requires.
type evInject struct{ msg, pkt int32 }   // reserve the MU injection engine
type evHop struct{ msg, pkt, hop int32 } // reserve one link, forward
type evArrive struct{ msg, pkt int32 }   // packet complete at destination

// Network is one simulated fabric instance. Building traffic
// (SendMessage, FailLink) is not safe for concurrent use; the run phase
// is parallelized internally by the chosen backend.
type Network struct {
	dims   torus.Dims
	params Params
	eng    des.Engine
	links  map[linkKey]*sim.Resource
	inject map[linkKey]*sim.Resource
	down   map[linkKey]bool // failed directed links (cables fail both ways)
	msgs   []*message

	tele      *telemetry.Registry
	packets   *telemetry.Counter
	bytes     *telemetry.Counter
	hops      *telemetry.Counter // per-packet route lengths, summed
	transfers *telemetry.Counter // individual link reservations
	reroutes  *telemetry.Counter // messages detoured around failed links
}

// New builds a fabric for the given torus shape on the sequential
// engine.
func New(dims torus.Dims, p Params) (*Network, error) {
	return NewOn(dims, p, des.NewSeq(1))
}

// NewOn builds a fabric running on an explicit simulation backend —
// des.NewSeq(n) for the deterministic oracle, warp.New(n, ...) for the
// optimistic parallel engine. Torus nodes are sharded onto the backend's
// LPs by rank modulo LP count.
func NewOn(dims torus.Dims, p Params, eng des.Engine) (*Network, error) {
	if err := dims.Validate(); err != nil {
		return nil, err
	}
	if p.LinkBytesPerSec <= 0 {
		return nil, fmt.Errorf("netsim: non-positive link bandwidth")
	}
	tele := telemetry.NewRegistry("netsim")
	return &Network{
		dims:      dims,
		params:    p,
		eng:       eng,
		links:     make(map[linkKey]*sim.Resource),
		inject:    make(map[linkKey]*sim.Resource),
		down:      make(map[linkKey]bool),
		tele:      tele,
		packets:   tele.Counter("packets"),
		bytes:     tele.Counter("payload_bytes"),
		hops:      tele.Counter("hops"),
		transfers: tele.Counter("link_transfers"),
		reroutes:  tele.Counter("reroutes"),
	}, nil
}

// Telemetry returns the fabric's counter registry, for adoption into a
// larger tree or direct snapshotting.
func (n *Network) Telemetry() *telemetry.Registry { return n.tele }

// Backend exposes the simulation backend the fabric runs on.
func (n *Network) Backend() des.Engine { return n.eng }

// lpOf shards torus nodes over the backend's logical processes.
func (n *Network) lpOf(node torus.Rank) int32 {
	return int32(int(node) % n.eng.LPs())
}

func (n *Network) linkFor(node torus.Rank, l torus.Link) *sim.Resource {
	k := linkKey{node, l}
	r, ok := n.links[k]
	if !ok {
		r = &sim.Resource{}
		n.links[k] = r
	}
	return r
}

// injectFor returns the injection engine serving a node's traffic onto
// one outgoing link: the MU has "multiple message engines that operate
// in parallel" (paper §II.C), so flows leaving on different links do not
// serialize against each other at injection.
func (n *Network) injectFor(node torus.Rank, first torus.Link) *sim.Resource {
	k := linkKey{node, first}
	r, ok := n.inject[k]
	if !ok {
		r = &sim.Resource{}
		n.inject[k] = r
	}
	return r
}

// linkOf returns the directed link taken from cur toward the next node.
func linkOf(d torus.Dims, cur, next torus.Rank) (torus.Link, error) {
	cc, nc := d.CoordOf(cur), d.CoordOf(next)
	for dim := 0; dim < torus.NumDims; dim++ {
		if cc[dim] == nc[dim] {
			continue
		}
		delta := d.Delta(cc, nc, dim)
		if delta == 1 {
			return torus.Link{Dim: dim, Dir: +1}, nil
		}
		if delta == -1 {
			return torus.Link{Dim: dim, Dir: -1}, nil
		}
	}
	return torus.Link{}, fmt.Errorf("netsim: %d and %d are not neighbors", cur, next)
}

// FailLink marks the physical cable out of node across l as dead in both
// directions — the BG/Q control system's view of a link failure — so
// subsequent messages route around it.
func (n *Network) FailLink(node torus.Rank, l torus.Link) {
	nb := n.dims.Neighbor(node, l)
	n.down[linkKey{node, l}] = true
	n.down[linkKey{nb, torus.Link{Dim: l.Dim, Dir: -l.Dir}}] = true
}

// downFn returns the failed-link predicate, nil when the fabric is
// clean (torus.RouteAround's fast path).
func (n *Network) downFn() func(torus.Rank, torus.Link) bool {
	if len(n.down) == 0 {
		return nil
	}
	return func(r torus.Rank, l torus.Link) bool { return n.down[linkKey{r, l}] }
}

// hopLink picks the live cable carrying a route hop. In a size-2
// dimension the reverse-direction cable reaches the same neighbor, so a
// hop survives one of the pair failing.
func (n *Network) hopLink(cur, next torus.Rank) (torus.Link, error) {
	l, err := linkOf(n.dims, cur, next)
	if err != nil {
		return l, err
	}
	if n.down[linkKey{cur, l}] {
		alt := torus.Link{Dim: l.Dim, Dir: -l.Dir}
		if n.dims[l.Dim] == 2 && !n.down[linkKey{cur, alt}] {
			return alt, nil
		}
		return l, fmt.Errorf("netsim: route crosses failed link %d:%s", cur, l)
	}
	return l, nil
}

// SendMessage schedules a message of the given size from src to dst at
// simulated time 'at'. The message is packetized; every packet follows
// the deterministic dimension-ordered route, serializing on the MU
// injection engine at the source and then on each directed link, hop by
// hop as simulation events. onDone (optional) fires when the last packet
// arrives; on the optimistic backend it is deferred until the arrival
// can no longer be rolled back. Call Run afterwards to execute the
// simulation.
func (n *Network) SendMessage(at sim.Time, src, dst torus.Rank, size int, onDone func(done sim.Time)) error {
	if src == dst {
		return fmt.Errorf("netsim: message to self")
	}
	down := n.downFn()
	path, ok := n.dims.RouteAround(src, dst, down)
	if !ok {
		return fmt.Errorf("%w: %d -> %d", ErrPartitioned, src, dst)
	}
	if down != nil {
		def := n.dims.Route(src, dst)
		rerouted := len(path) != len(def)
		for i := 0; !rerouted && i < len(path); i++ {
			rerouted = path[i] != def[i]
		}
		if rerouted {
			n.reroutes.Inc()
		}
	}
	// Resolve the whole route — links, resources, owner LPs — eagerly:
	// route errors surface here, and the run phase then shares no maps
	// across LPs.
	npkts := (size + mu.MaxPayload - 1) / mu.MaxPayload
	if npkts == 0 {
		npkts = 1
	}
	m := &message{
		size:   size,
		npkts:  npkts,
		onDone: onDone,
		links:  make([]*sim.Resource, len(path)),
		hopLP:  make([]int32, len(path)),
		nextLP: make([]int32, len(path)),
	}
	cur := src
	for h, next := range path {
		l, err := n.hopLink(cur, next)
		if err != nil {
			return err
		}
		m.links[h] = n.linkFor(cur, l)
		m.hopLP[h] = n.lpOf(cur)
		if h == 0 {
			m.inject = n.injectFor(src, l)
		}
		cur = next
	}
	for h := range path {
		if h+1 < len(path) {
			m.nextLP[h] = m.hopLP[h+1]
		} else {
			m.nextLP[h] = n.lpOf(dst)
		}
	}
	n.packets.Add(int64(npkts))
	n.bytes.Add(int64(size))
	n.hops.Add(int64(npkts) * int64(len(path)))
	n.msgs = append(n.msgs, m)
	n.eng.Post(int(m.hopLP[0]), at, evInject{msg: int32(len(n.msgs) - 1)})
	return nil
}

// payload returns packet pkt's payload size (full packets, then the
// remainder; a zero-byte message still serializes one header byte).
func (m *message) payload(pkt int32) int {
	p := m.size - int(pkt)*mu.MaxPayload
	if p > mu.MaxPayload {
		p = mu.MaxPayload
	}
	if p < 1 {
		p = 1
	}
	return p
}

// reserve books service on r at the current event's time, journaled so
// the optimistic backend can undo it on rollback.
func reserve(p des.Proc, r *sim.Resource, service sim.Time) (start, done sim.Time) {
	freeAt, busy := r.State()
	p.Journal(func() { r.SetState(freeAt, busy) })
	return r.Reserve(p.Now(), service)
}

// HandleEvent implements des.Handler: the per-packet lifecycle
// inject -> hop* -> arrive.
func (n *Network) HandleEvent(p des.Proc, msg des.Msg) {
	switch ev := msg.(type) {
	case evInject:
		m := n.msgs[ev.msg]
		_, injDone := reserve(p, m.inject, n.params.InjectOverhead)
		if int(ev.pkt)+1 < m.npkts {
			// Next packet enters the injection engine when this one
			// clears it, back to back.
			p.Send(p.LP(), injDone, evInject{msg: ev.msg, pkt: ev.pkt + 1})
		}
		p.Send(p.LP(), injDone, evHop{msg: ev.msg, pkt: ev.pkt})

	case evHop:
		m := n.msgs[ev.msg]
		// Serialize payload bytes at the payload rate: the 32B header's
		// wire time is already folded into the 1.8 GB/s payload figure
		// (2 GB/s raw minus header and protocol overhead, paper §II.B).
		ser := sim.BytesTime(int64(m.payload(ev.pkt)), n.params.LinkBytesPerSec)
		_, done := reserve(p, m.links[ev.hop], ser)
		n.transfers.Inc()
		p.Journal(func() { n.transfers.Add(-1) })
		arr := done + n.params.HopLatency
		if int(ev.hop)+1 < len(m.links) {
			p.Send(int(m.nextLP[ev.hop]), arr, evHop{msg: ev.msg, pkt: ev.pkt, hop: ev.hop + 1})
		} else {
			p.Send(int(m.nextLP[ev.hop]), arr, evArrive{msg: ev.msg, pkt: ev.pkt})
		}

	case evArrive:
		m := n.msgs[ev.msg]
		oldArrived, oldLast := m.arrived, m.lastArr
		p.Journal(func() { m.arrived, m.lastArr = oldArrived, oldLast })
		m.arrived++
		if t := p.Now(); t > m.lastArr {
			m.lastArr = t
		}
		if m.arrived == m.npkts && m.onDone != nil {
			final := m.lastArr
			cb := m.onDone
			p.Commit(func() { cb(final) })
		}

	default:
		panic(fmt.Sprintf("netsim: unknown event %T", msg))
	}
}

// Run executes all scheduled traffic and returns the completion time of
// the simulation: the latest packet arrival.
func (n *Network) Run() sim.Time {
	return n.eng.Run(n)
}

// Stats returns total packets and payload bytes moved.
func (n *Network) Stats() (packets, bytes int64) { return n.packets.Load(), n.bytes.Load() }

// LinkUtilization returns each used directed link's busy fraction over
// the horizon, keyed "node:linkname".
func (n *Network) LinkUtilization(horizon sim.Time) map[string]float64 {
	out := make(map[string]float64, len(n.links))
	for k, r := range n.links {
		out[fmt.Sprintf("%d:%s", k.node, k.link)] = r.Utilization(horizon)
	}
	return out
}

// ---------------------------------------------------------------------
// Experiments
// ---------------------------------------------------------------------

// NeighborExchange simulates the Table 3 workload on the fabric: node 0
// exchanges `size`-byte messages bidirectionally with its first
// `neighbors` distinct torus neighbors, `iters` times back to back, and
// returns the aggregate throughput in MB/s. This is the rendezvous
// (RDMA) data path: no CPU copies, links are the only resource.
func NeighborExchange(dims torus.Dims, p Params, neighbors, size, iters int) (float64, error) {
	return NeighborExchangeOn(des.NewSeq(1), dims, p, neighbors, size, iters)
}

// NeighborExchangeOn is NeighborExchange on an explicit backend.
func NeighborExchangeOn(eng des.Engine, dims torus.Dims, p Params, neighbors, size, iters int) (float64, error) {
	n, err := NewOn(dims, p, eng)
	if err != nil {
		return 0, err
	}
	seen := map[torus.Rank]bool{0: true}
	var nbs []torus.Rank
	for _, l := range torus.Links() {
		nb := dims.Neighbor(0, l)
		if !seen[nb] {
			seen[nb] = true
			nbs = append(nbs, nb)
			if len(nbs) == neighbors {
				break
			}
		}
	}
	if len(nbs) < neighbors {
		return 0, fmt.Errorf("netsim: shape %v has only %d distinct neighbors", dims, len(nbs))
	}
	for it := 0; it < iters; it++ {
		for _, nb := range nbs {
			if err := n.SendMessage(0, 0, nb, size, nil); err != nil {
				return 0, err
			}
			if err := n.SendMessage(0, nb, 0, size, nil); err != nil {
				return 0, err
			}
		}
	}
	end := n.Run()
	if end == 0 {
		return 0, fmt.Errorf("netsim: empty simulation")
	}
	totalBytes := float64(2*neighbors*size) * float64(iters)
	return totalBytes / end.Seconds() / 1e6, nil
}

// UniformAllToAll simulates every node sending one message to every
// other node and returns (completion time, max link utilization, mean
// link utilization). On a symmetric torus, dimension-ordered routing
// balances uniform traffic: max/mean stays near 1.
func UniformAllToAll(dims torus.Dims, p Params, size int) (sim.Time, float64, float64, error) {
	return UniformAllToAllOn(des.NewSeq(1), dims, p, size)
}

// UniformAllToAllOn is UniformAllToAll on an explicit backend.
func UniformAllToAllOn(eng des.Engine, dims torus.Dims, p Params, size int) (sim.Time, float64, float64, error) {
	n, err := NewOn(dims, p, eng)
	if err != nil {
		return 0, 0, 0, err
	}
	nodes := dims.Nodes()
	for s := 0; s < nodes; s++ {
		for d := 0; d < nodes; d++ {
			if s == d {
				continue
			}
			if err := n.SendMessage(0, torus.Rank(s), torus.Rank(d), size, nil); err != nil {
				return 0, 0, 0, err
			}
		}
	}
	end := n.Run()
	var max, sum float64
	cnt := 0
	for _, u := range n.LinkUtilization(end) {
		if u > max {
			max = u
		}
		sum += u
		cnt++
	}
	mean := 0.0
	if cnt > 0 {
		mean = sum / float64(cnt)
	}
	return end, max, mean, nil
}
