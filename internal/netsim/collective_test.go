package netsim

import (
	"testing"

	"pamigo/internal/model"
	"pamigo/internal/sim"
	"pamigo/internal/torus"
)

func TestAllreduceLatencyGrowsWithMachine(t *testing.T) {
	p := DefaultCollectiveParams()
	var prev sim.Time
	for _, nodes := range []int{32, 256, 2048} {
		lat, err := AllreduceLatency(model.ShapeFor(nodes), p, 8)
		if err != nil {
			t.Fatal(err)
		}
		if lat <= prev {
			t.Fatalf("latency not growing: %v nodes -> %v", nodes, lat)
		}
		prev = lat
	}
}

func TestAllreduceLatencyMatchesModelShape(t *testing.T) {
	// The structural DES and the calibrated closed form must agree on the
	// figure 7 curve within ~20% at every point of the sweep (they share
	// the paper's anchors only indirectly, through the tree geometry).
	p := DefaultCollectiveParams()
	mp := model.Default()
	for _, nodes := range model.FigNodeCounts {
		des, err := AllreduceLatency(model.ShapeFor(nodes), p, 8)
		if err != nil {
			t.Fatal(err)
		}
		m := model.Fig7Allreduce(mp, nodes, 1) // ns
		ratio := des.Nanos() / m
		if ratio < 0.8 || ratio > 1.2 {
			t.Fatalf("%d nodes: DES %.0fns vs model %.0fns (ratio %.2f)", nodes, des.Nanos(), m, ratio)
		}
	}
}

func TestAllreduce2048Calibration(t *testing.T) {
	// The paper's headline: ~5.5us for an 8B allreduce on 2048 nodes.
	p := DefaultCollectiveParams()
	lat, err := AllreduceLatency(model.ShapeFor(2048), p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if lat.Micros() < 4.5 || lat.Micros() > 6.5 {
		t.Fatalf("2048-node 8B allreduce = %v, paper 5.5us", lat)
	}
}

func TestBarrierFasterThanAllreduce(t *testing.T) {
	p := DefaultCollectiveParams()
	dims := model.ShapeFor(2048)
	b, err := BarrierLatency(dims, p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AllreduceLatency(dims, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b >= a {
		t.Fatalf("barrier %v not faster than allreduce %v", b, a)
	}
	// Paper: barrier 2.7us at 2048 nodes; accept the structural estimate
	// within a factor.
	if b.Micros() < 1.5 || b.Micros() > 4.0 {
		t.Fatalf("2048-node barrier = %v, paper 2.7us", b)
	}
}

func TestAllreduceThroughputApproachesLinkPeak(t *testing.T) {
	p := DefaultCollectiveParams()
	dims := model.ShapeFor(2048)
	small, err := AllreduceThroughput(dims, p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	big, err := AllreduceThroughput(dims, p, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Fatal("throughput should rise with message size")
	}
	peak := p.LinkBytesPerSec / 1e6
	if big < 0.9*peak || big > 1.02*peak {
		t.Fatalf("8MB allreduce throughput %.0f MB/s, want ~%.0f (link peak)", big, peak)
	}
}

func TestCollectiveValidation(t *testing.T) {
	p := DefaultCollectiveParams()
	bad := torus.Dims{0, 1, 1, 1, 1}
	if _, err := AllreduceLatency(bad, p, 8); err == nil {
		t.Error("invalid dims accepted")
	}
	if _, err := BarrierLatency(bad, p); err == nil {
		t.Error("invalid dims accepted by barrier")
	}
}
