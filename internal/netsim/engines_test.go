package netsim

// Cross-engine coverage: the netsim suites replayed on every simulation
// backend — the sequential oracle and the optimistic warp engine at 1,
// 2 and 8 LPs — asserting the parallel backend reproduces the oracle's
// packet schedule exactly (identical completion times, counters and
// link occupancy, which is what "byte-identical" means at this layer:
// every downstream number is a pure function of those).
//
// The collective suite (collective_test.go) is not parameterized: the
// tree collectives are closed-form latency equations that never touch a
// simulation engine.

import (
	"testing"

	"pamigo/internal/sim"
	"pamigo/internal/sim/des"
	"pamigo/internal/sim/warp"
	"pamigo/internal/torus"
)

// engineConfigs enumerates the backends under test. The tiny fossil
// threshold forces frequent GVT rounds and fossil collection even on
// short netsim runs; the windowed config additionally throttles
// optimism so the window-blocked park/resume path sees netsim traffic.
var engineConfigs = []struct {
	name string
	mk   func() des.Engine
}{
	{"seq1", func() des.Engine { return des.NewSeq(1) }},
	{"warp1", func() des.Engine { return warp.New(1, warp.Options{FossilEvery: 64}) }},
	{"warp2", func() des.Engine { return warp.New(2, warp.Options{FossilEvery: 64}) }},
	{"warp8", func() des.Engine { return warp.New(8, warp.Options{FossilEvery: 64}) }},
	{"warp8w", func() des.Engine {
		return warp.New(8, warp.Options{FossilEvery: 64, Window: 5 * sim.Microsecond})
	}},
}

func TestEnginesSmallMessageLatency(t *testing.T) {
	// The exact-latency assertion of TestSmallMessageLatency must hold
	// bit-for-bit on every backend, not just the oracle.
	p := DefaultParams()
	dst := torus.Rank(dims333.RankOf(torus.Coord{1, 1, 0, 0, 0})) // 2 hops
	ser := sim.BytesTime(1, p.LinkBytesPerSec)
	want := p.InjectOverhead + 2*(ser+p.HopLatency)
	for _, cfg := range engineConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			n, err := NewOn(dims333, p, cfg.mk())
			if err != nil {
				t.Fatal(err)
			}
			var done sim.Time
			if err := n.SendMessage(0, 0, dst, 1, func(d sim.Time) { done = d }); err != nil {
				t.Fatal(err)
			}
			n.Run()
			if done != want {
				t.Fatalf("2-hop latency %v, want %v", done, want)
			}
		})
	}
}

func TestEnginesSingleMessageBandwidth(t *testing.T) {
	p := DefaultParams()
	const size = 1 << 20
	dst := dims333.Neighbor(0, torus.Link{Dim: 0, Dir: 1})
	for _, cfg := range engineConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			n, err := NewOn(dims333, p, cfg.mk())
			if err != nil {
				t.Fatal(err)
			}
			var done sim.Time
			if err := n.SendMessage(0, 0, dst, size, func(d sim.Time) { done = d }); err != nil {
				t.Fatal(err)
			}
			n.Run()
			if done == 0 {
				t.Fatal("completion callback never fired")
			}
			tput := float64(size) / done.Seconds()
			if tput < 0.95*p.LinkBytesPerSec || tput > 1.01*p.LinkBytesPerSec {
				t.Fatalf("single flow throughput %.0f B/s, want ~%.0f", tput, p.LinkBytesPerSec)
			}
		})
	}
}

// TestEnginesNeighborExchangeEquivalent is the headline cross-engine
// check: the Table 3 rendezvous derivation must come out *identical* —
// same simulated completion time, hence the same float to the last bit —
// on the oracle and on every warp configuration.
func TestEnginesNeighborExchangeEquivalent(t *testing.T) {
	// 64 KB keeps the packet count (and -race runtime) bounded; the
	// equivalence claim is exact equality, not an absolute-throughput
	// window, so message size carries no test power here.
	p := DefaultParams()
	const size = 1 << 16
	for _, nb := range []int{1, 4, 10} {
		want, err := NeighborExchange(dims333, p, nb, size, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range engineConfigs[1:] {
			got, err := NeighborExchangeOn(cfg.mk(), dims333, p, nb, size, 2)
			if err != nil {
				t.Fatalf("%s: %v", cfg.name, err)
			}
			if got != want {
				t.Fatalf("%s neighbors=%d: %.6f MB/s diverges from oracle %.6f MB/s",
					cfg.name, nb, got, want)
			}
		}
	}
}

// TestEnginesUniformAllToAllEquivalent: heavy cross-LP contention — 26
// nodes sharded over up to 8 LPs, every link shared — must still
// reproduce the oracle's completion time and utilization profile
// exactly.
func TestEnginesUniformAllToAllEquivalent(t *testing.T) {
	dims := torus.Dims{3, 3, 3, 1, 1}
	p := DefaultParams()
	wantEnd, wantMax, wantMean, err := UniformAllToAll(dims, p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range engineConfigs[1:] {
		end, max, mean, err := UniformAllToAllOn(cfg.mk(), dims, p, 4096)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if end != wantEnd || max != wantMax || mean != wantMean {
			t.Fatalf("%s: (end %v, max %.9f, mean %.9f) diverges from oracle (end %v, max %.9f, mean %.9f)",
				cfg.name, end, max, mean, wantEnd, wantMax, wantMean)
		}
	}
}

// TestEnginesTransfersCounter checks the journaled in-event counter: on
// the optimistic backend a rolled-back hop must take its link_transfers
// increment back with it, so the committed total matches the oracle.
func TestEnginesTransfersCounter(t *testing.T) {
	p := DefaultParams()
	var want int64 = -1
	for _, cfg := range engineConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			n, err := NewOn(dims333, p, cfg.mk())
			if err != nil {
				t.Fatal(err)
			}
			dst := torus.Rank(dims333.RankOf(torus.Coord{1, 1, 1, 0, 0})) // 3 hops
			for i := 0; i < 4; i++ {
				if err := n.SendMessage(0, 0, dst, 2048, nil); err != nil {
					t.Fatal(err)
				}
				if err := n.SendMessage(0, dst, 0, 2048, nil); err != nil {
					t.Fatal(err)
				}
			}
			n.Run()
			got, _ := n.Telemetry().Snapshot().Counter("link_transfers")
			if want == -1 {
				want = got
				// 8 messages x 4 packets x 3 hops.
				if want != 8*4*3 {
					t.Fatalf("oracle link_transfers = %d, want %d", want, 8*4*3)
				}
			} else if got != want {
				t.Fatalf("link_transfers = %d, oracle counted %d", got, want)
			}
		})
	}
}

// TestEnginesFaultReroute replays the fault suite's reroute scenario on
// every backend: detours and dead-link idleness are properties of the
// committed schedule and must survive optimistic execution.
func TestEnginesFaultReroute(t *testing.T) {
	dims := torus.Dims{3, 1, 1, 1, 1}
	for _, cfg := range engineConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			n, err := NewOn(dims, DefaultParams(), cfg.mk())
			if err != nil {
				t.Fatal(err)
			}
			n.FailLink(0, torus.Link{Dim: torus.DimA, Dir: +1})
			if err := n.SendMessage(0, 0, 1, 4096, nil); err != nil {
				t.Fatal(err)
			}
			end := n.Run()
			if v, _ := n.Telemetry().Snapshot().Counter("reroutes"); v != 1 {
				t.Errorf("reroutes = %d, want 1", v)
			}
			util := n.LinkUtilization(end)
			if u := util["0:A+"]; u != 0 {
				t.Errorf("dead link 0:A+ carried traffic (utilization %v)", u)
			}
			for _, lk := range []string{"0:A-", "2:A-"} {
				if util[lk] == 0 {
					t.Errorf("detour link %s idle", lk)
				}
			}
		})
	}
}
