package netsim

import (
	"errors"
	"testing"

	"pamigo/internal/torus"
)

// A dead direct cable forces the detour and leaves the dead link idle.
func TestFailLinkReroutes(t *testing.T) {
	dims := torus.Dims{3, 1, 1, 1, 1}
	n, err := New(dims, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	n.FailLink(0, torus.Link{Dim: torus.DimA, Dir: +1})
	if err := n.SendMessage(0, 0, 1, 4096, nil); err != nil {
		t.Fatal(err)
	}
	end := n.Run()
	if v, _ := n.Telemetry().Snapshot().Counter("reroutes"); v != 1 {
		t.Errorf("reroutes = %d, want 1", v)
	}
	util := n.LinkUtilization(end)
	if u := util["0:A+"]; u != 0 {
		t.Errorf("dead link 0:A+ carried traffic (utilization %v)", u)
	}
	// The detour 0 -> 2 -> 1 rides the A- direction twice.
	for _, lk := range []string{"0:A-", "2:A-"} {
		if util[lk] == 0 {
			t.Errorf("detour link %s idle", lk)
		}
	}
	// Hops accounting reflects the 2-hop detour: 8 packets x 2 hops.
	if v, _ := n.Telemetry().Snapshot().Counter("hops"); v != 16 {
		t.Errorf("hops = %d, want 16", v)
	}
}

// Clean routes stay bit-identical after an unrelated link fails.
func TestFailLinkLeavesCleanRoutesAlone(t *testing.T) {
	dims := torus.Dims{4, 4, 1, 1, 1}
	n, err := New(dims, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	n.FailLink(9, torus.Link{Dim: torus.DimB, Dir: +1})
	if err := n.SendMessage(0, 0, 1, 512, nil); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if v, _ := n.Telemetry().Snapshot().Counter("reroutes"); v != 0 {
		t.Errorf("unaffected message rerouted (%d)", v)
	}
}

func TestPartitionedSendFails(t *testing.T) {
	dims := torus.Dims{2, 1, 1, 1, 1}
	n, err := New(dims, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	n.FailLink(0, torus.Link{Dim: torus.DimA, Dir: +1})
	n.FailLink(0, torus.Link{Dim: torus.DimA, Dir: -1})
	err = n.SendMessage(0, 0, 1, 512, nil)
	if !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned send returned %v, want ErrPartitioned", err)
	}
}

// In a size-2 dimension the second cable keeps the pair connected.
func TestSizeTwoDimSurvivesOneCable(t *testing.T) {
	dims := torus.Dims{2, 1, 1, 1, 1}
	n, err := New(dims, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	n.FailLink(0, torus.Link{Dim: torus.DimA, Dir: +1})
	if err := n.SendMessage(0, 0, 1, 512, nil); err != nil {
		t.Fatalf("one dead cable of two partitioned the pair: %v", err)
	}
	end := n.Run()
	util := n.LinkUtilization(end)
	if util["0:A+"] != 0 {
		t.Error("traffic crossed the dead cable")
	}
	if util["0:A-"] == 0 {
		t.Error("surviving cable idle")
	}
}
