#!/bin/sh
# Multi-process wire smoke: boots a partition split across real OS
# processes on loopback TCP and holds the tentpole claims:
#
#   1. A 2-process partition under a 5% connection-cut + 2% corruption
#      storm produces digests byte-exact with the single-process
#      reference run.
#   2. SIGKILLing one worker mid-run leaves a survivor that confirms
#      the death with a typed verdict ("peer death confirmed" /
#      ErrPeerDead), recovers from its last checkpoint, and still
#      finishes byte-exact — all bounded by -deadline, never a hang.
set -eu
cd "$(dirname "$0")/.."

DIMS=2x1x1x1x1
STORM="drop=0.05,corrupt=0.02"
SEED=5
DIR=$(mktemp -d /tmp/pamigo-wire-smoke.XXXXXX)
trap 'rm -rf "$DIR"; kill $(jobs -p) 2>/dev/null || true' EXIT INT TERM

go build -o "$DIR/pamirun" ./cmd/pamirun

# The listener binds port 0; later processes need the kernel-assigned
# address, scraped from its log.
wait_addr() { # logfile
	i=0
	while [ $i -lt 200 ]; do
		addr=$(sed -n 's/.*listening on \([^ ]*\).*/\1/p' "$1" 2>/dev/null | head -1)
		[ -n "$addr" ] && { echo "$addr"; return 0; }
		i=$((i + 1))
		sleep 0.05
	done
	echo "wire_smoke: no listen address appeared in $1" >&2
	return 1
}

echo "  -> single-process reference digests"
"$DIR/pamirun" -dims $DIMS -ppn 1 -wiredemo -deadline 60s >"$DIR/ref.log"
grep '^task .* digest ' "$DIR/ref.log" | sort >"$DIR/ref.digests"
[ -s "$DIR/ref.digests" ] || { echo "wire_smoke: reference run printed no digests" >&2; exit 1; }

echo "  -> 2-process partition under the fault storm ($STORM)"
"$DIR/pamirun" -dims $DIMS -ppn 1 -listen 127.0.0.1:0 -rank-range 0:1 \
	-faults "$STORM" -fault-seed $SEED -deadline 60s >"$DIR/s0.log" 2>&1 &
ADDR=$(wait_addr "$DIR/s0.log")
"$DIR/pamirun" -dims $DIMS -ppn 1 -join "$ADDR" -rank-range 1:2 \
	-faults "$STORM" -fault-seed $SEED -deadline 60s >"$DIR/s1.log" 2>&1
wait %1
grep -h '^task .* digest ' "$DIR/s0.log" "$DIR/s1.log" | sort >"$DIR/storm.digests"
if ! cmp -s "$DIR/ref.digests" "$DIR/storm.digests"; then
	echo "wire_smoke: storm digests differ from the single-process reference" >&2
	diff "$DIR/ref.digests" "$DIR/storm.digests" >&2 || true
	exit 1
fi
grep -q 'digests byte-exact' "$DIR/s0.log" && grep -q 'digests byte-exact' "$DIR/s1.log"

echo "  -> SIGKILL one worker mid-run; survivor must recover"
"$DIR/pamirun" -dims $DIMS -ppn 1 -listen 127.0.0.1:0 -rank-range 0:1 \
	-deadline 60s >"$DIR/k0.log" 2>&1 &
ADDR=$(wait_addr "$DIR/k0.log")
# The victim SIGKILLs itself at round 6 — exit 137, no goodbye.
set +e
"$DIR/pamirun" -dims $DIMS -ppn 1 -join "$ADDR" -rank-range 1:2 \
	-die-round 6 -deadline 60s >"$DIR/k1.log" 2>&1
VICTIM=$?
set -e
[ "$VICTIM" -eq 137 ] || { echo "wire_smoke: victim exited $VICTIM, want 137 (SIGKILL)" >&2; exit 1; }
wait %1 || { echo "wire_smoke: survivor failed; log:" >&2; cat "$DIR/k0.log" >&2; exit 1; }
grep -q 'peer death confirmed' "$DIR/k0.log" ||
	{ echo "wire_smoke: survivor never printed the typed death verdict" >&2; exit 1; }
grep -q 'recovered from the round-4 checkpoint' "$DIR/k0.log" ||
	{ echo "wire_smoke: survivor did not recover from its checkpoint" >&2; exit 1; }
grep -q 'digests byte-exact' "$DIR/k0.log" ||
	{ echo "wire_smoke: survivor finished without byte-exact digests" >&2; exit 1; }

echo "  -> wire smoke passed"
