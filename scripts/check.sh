#!/bin/sh
# Repository verification recipe: everything CI (and a pre-commit run)
# should hold green. The race pass covers the packages with dedicated
# concurrency stress tests plus the layers they exercise.
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (telemetry + integration + hot layers)"
go test -race ./internal/telemetry ./internal/integration ./internal/core ./internal/mpilib

echo "==> go test -race -tags pamitrace ./internal/telemetry"
go test -race -tags pamitrace ./internal/telemetry

echo "all checks passed"
