#!/bin/sh
# Repository verification recipe: everything CI (and a pre-commit run)
# should hold green. The race pass covers the packages with dedicated
# concurrency stress tests plus the layers they exercise.
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> abortable-wait lint (no raw parks outside the abortable primitives)"
sh scripts/lint_parks.sh

echo "==> go test ./..."
go test ./...

echo "==> go test -race (telemetry + integration + hot layers)"
go test -race ./internal/telemetry ./internal/integration ./internal/core ./internal/mpilib ./internal/mu

echo "==> go test -race (Time Warp engine: equivalence vs oracle, rollback stress, netsim cross-engine)"
go test -race ./internal/sim/... ./internal/netsim

echo "==> go test -race (wire transport: reconnect storm, fault storm, cross-process machines)"
go test -race ./internal/wire ./internal/machine ./internal/health ./cmd/pamirun

echo "==> go test -race -tags pamitrace ./internal/telemetry"
go test -race -tags pamitrace ./internal/telemetry

echo "==> go test -tags bufpooldebug (buffer ownership: double-release, use-after-release)"
go test -tags bufpooldebug ./internal/bufpool

echo "==> chaos smoke (fault injection, fixed seed, small torus, -race)"
go test -race -run TestChaos ./internal/integration
go run ./cmd/pamirun -dims 2x2x1x1x1 -ppn 2 -deadline 120s \
	-faults "drop=0.05,corrupt=0.02,dup=0.01" -fault-seed 7 >/dev/null

echo "==> crash-recovery smoke (node death, checkpoint-restart, fixed seed)"
go run ./cmd/pamirun -dims 2x2x2x1x1 -ppn 1 -deadline 120s \
	-faults "crash@pkt=5000,node=3" -fault-seed 7 >/dev/null

echo "==> overload smoke (many-to-one flood, bounded queue HWM, no goroutine leaks, -race)"
go test -race -run TestOverloadFlood ./internal/bench
go run ./cmd/msgrate -faults "flood@node=0" -budget 64 -senders 32 -window 300 >/dev/null

echo "==> multi-process wire smoke (2 OS processes, fault storm, SIGKILL survival)"
sh scripts/wire_smoke.sh

echo "==> recovery soak (5 kills: 3 in-process + 2 wire SIGKILLs, online self-heal)"
sh scripts/recovery_soak.sh

# Deeper static analysis, gated on the tools being present: the build
# environment is hermetic (no network installs), so absence is a notice,
# never a failure. Install locally with:
#   go install honnef.co/go/tools/cmd/staticcheck@latest
#   go install golang.org/x/vuln/cmd/govulncheck@latest
if command -v staticcheck >/dev/null 2>&1; then
	echo "==> staticcheck ./..."
	staticcheck ./...
else
	echo "==> staticcheck not installed; skipping (notice, not a failure)"
fi
if command -v govulncheck >/dev/null 2>&1; then
	echo "==> govulncheck ./..."
	govulncheck ./...
else
	echo "==> govulncheck not installed; skipping (notice, not a failure)"
fi

echo "==> fault-grammar fuzz (short deterministic run)"
go test -run xxx -fuzz FuzzParsePlan -fuzztime 10s ./internal/fault >/dev/null

echo "==> wire frame fuzz (decoder must never panic on hostile bytes)"
go test -run xxx -fuzz FuzzDecodeFrame -fuzztime 10s ./internal/wire >/dev/null

echo "==> GVT fuzz (concurrent stamp folding + whole-engine runs, short)"
go test -run xxx -fuzz 'FuzzGVT$' -fuzztime 10s ./internal/sim/warp >/dev/null
go test -run xxx -fuzz 'FuzzGVTEngine$' -fuzztime 10s ./internal/sim/warp >/dev/null

echo "==> bench regression gate (Table 1 + Fig 5 + fan-in + warp speedup vs BENCH_BASELINE.json)"
# Best-of-3 ns/op absorbs scheduler noise; any allocs/op on the
# zero-alloc set fails regardless, and the warp PHOLD entry gates the
# seq/warp ns-per-op ratio (speedup_vs) so optimism-throttling
# regressions fail even when absolute machine speed shifts. Refresh the
# baseline with `go run ./cmd/benchgate -update -in bench.out` after a
# deliberate performance change.
go test -bench 'BenchmarkTable1|BenchmarkFig5_PAMIRate|BenchmarkFanIn|BenchmarkWarpSpeedup' -benchmem \
	-run xxx -benchtime 2s -count 3 | tee /tmp/pamigo-bench.out
go run ./cmd/benchgate -in /tmp/pamigo-bench.out

echo "all checks passed"
