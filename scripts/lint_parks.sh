#!/bin/sh
# Abortable-wait lint (grep-based): every blocking park in the runtime
# must be reachable by the cancellation layer — barrier poisoning
# (l2atomic, collnet.GIBarrier), abort-aware region waits
# (wakeup.Region.WaitAbort), or a sentinel-registered watchdog.Park on
# the stall path — so the partition stall sentinel can observe and
# escalate it (DESIGN §8). A wait the sentinel cannot see is a silent
# hang waiting to happen.
#
# The check is deliberately dumb: it counts raw park primitives
# (sync.NewCond, channel construction in the abortable layers) per
# file against a pinned allowlist. Adding a new raw park — a new cond,
# a new gate channel — fails until the allowlist is extended, which is
# the moment to route the wait through an abortable primitive instead,
# or to justify it here (zero-alloc fast paths that never block, stop/
# done plumbing that only closes, never parks a peer's progress).
set -eu
cd "$(dirname "$0")/.."

fail=0

# check PATTERN FILE MAX — fail when FILE contains more than MAX
# occurrences of PATTERN outside comment lines.
check() {
	got=$(grep -v '^\s*//' "$2" | grep -c "$1" || true)
	if [ "$got" -gt "$3" ]; then
		echo "lint_parks: $2 has $got '$1' (allowlist pins $3): new raw parks must use the abortable primitives (see DESIGN §8)" >&2
		fail=1
	fi
}

# No sync.NewCond outside the allowlisted owners.
for f in $(grep -rl "sync.NewCond" --include="*.go" . | grep -v _test.go); do
	case "$f" in
	./internal/wakeup/wakeup.go | \
		./internal/collnet/collnet.go | \
		./internal/mu/reliable.go | \
		./internal/wire/transport.go | \
		./internal/sim/warp/warp.go) ;;
	*)
		echo "lint_parks: $f introduces a raw sync.Cond park outside the allowlist: make it abortable (poison broadcast + sentinel park) or extend scripts/lint_parks.sh with a justification" >&2
		fail=1
		;;
	esac
done

# Allowlisted sync.Cond owners, counts pinned. Every cond here is
# abort-aware: wakeup.Region (WaitAbort + Touch broadcast), collnet
# retired-cond (Poison broadcasts it), mu flow cond (failFlow kicks
# it, stage parks on the sentinel), wire transport conds (reconnect/
# close paths broadcast), warp LP cond (engine-internal, drained by
# Stop).
check "sync.NewCond" internal/wakeup/wakeup.go 1
check "sync.NewCond" internal/collnet/collnet.go 1
check "sync.NewCond" internal/mu/reliable.go 1
check "sync.NewCond" internal/wire/transport.go 3
check "sync.NewCond" internal/sim/warp/warp.go 1

# Channel construction inside the abortable layers, counts pinned.
# The allowed ones are either poisonable gates (session done + GI
# barrier generations: Poison publishes the error then closes) or
# stop/done plumbing that is closed on shutdown, never awaited by the
# data path.
for f in $(grep -rl "make(chan " --include="*.go" \
	internal/core internal/collnet internal/l2atomic internal/wakeup \
	internal/recovery internal/mu 2>/dev/null | grep -v _test.go); do
	case "$f" in
	internal/collnet/session.go | \
		internal/recovery/supervisor.go | \
		internal/mu/reliable.go) ;;
	*)
		echo "lint_parks: $f introduces a raw channel wait in an abortable layer: gate it behind a poisonable primitive or extend scripts/lint_parks.sh with a justification" >&2
		fail=1
		;;
	esac
done
check "make(chan " internal/collnet/session.go 4
check "make(chan " internal/recovery/supervisor.go 2
check "make(chan " internal/mu/reliable.go 2

[ "$fail" -eq 0 ] && echo "lint_parks: every park site is abortable or allowlisted"
exit "$fail"
