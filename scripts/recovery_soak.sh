#!/bin/sh
# Chaos soak for the self-healing subsystem: five kills across one run
# per failure domain, every one recovered automatically and online, and
# every final digest byte-exact against the analytic fault-free value.
#
#   1. In-process: a 4-node partition takes THREE sequential node
#      crashes from the fault plan; the recovery supervisor fences,
#      auto-revives, and restores each victim from its buddy replica
#      while the other nodes keep running. MTTR comes out of the
#      recovery.* telemetry printed at the end.
#   2. Wire, listener killed: the process hosting the listen socket
#      SIGKILLs itself mid-run; the -respawn supervisor relaunches it
#      with a bumped incarnation and it REBINDS THE SAME PORT — the
#      listen-bind retry (EADDRINUSE backoff) is load-bearing here —
#      rejoins, and restores from the survivor's buddy replica.
#   3. Wire, dialer killed: same, with the joining process as victim,
#      so the survivor's dead-peer redial loop is what heals the edge.
#
# Everything is bounded by -deadline: a hang is a failure, never a wait.
# On a deadline overrun the worker's watchdog writes the stall-sentinel
# wait-site table plus a goroutine dump into its log, and this script
# surfaces that section — a soak failure names the stuck wait, it never
# dies with a bare timeout.
set -eu
cd "$(dirname "$0")/.."

DIMS_IN=2x2x1x1x1
DIMS_WIRE=2x1x1x1x1
DIR=$(mktemp -d /tmp/pamigo-recovery-soak.XXXXXX)
trap 'rm -rf "$DIR"; kill $(jobs -p) 2>/dev/null || true' EXIT INT TERM

go build -o "$DIR/pamirun" ./cmd/pamirun

# The listener uses a FIXED port below the ephemeral range: the respawn
# supervisor must rebind the same address after the kill, and a
# kernel-assigned port could meanwhile be recycled as the local port of
# some unrelated outbound socket, turning the rebind into a permanent
# EADDRINUSE. Fixed ports keep the rebind deterministic.
wait_addr() { # logfile
	i=0
	while [ $i -lt 200 ]; do
		addr=$(sed -n 's/.*listening on \([^ ]*\).*/\1/p' "$1" 2>/dev/null | head -1)
		[ -n "$addr" ] && { echo "$addr"; return 0; }
		i=$((i + 1))
		sleep 0.05
	done
	echo "recovery_soak: no listen address appeared in $1" >&2
	quit_jobs
	return 1
}

# quit_jobs SIGQUITs every background worker so each appends its hang
# dump (wait-site table + goroutine stacks) to its own log before the
# EXIT trap kills it; failure diagnosis then reads the dumps, not a
# bare timeout.
quit_jobs() {
	for pid in $(jobs -p); do
		kill -QUIT "$pid" 2>/dev/null || true
	done
	sleep 1
}

# show_log LOG prints a failed run's log; if the run died to its
# -deadline watchdog, the embedded hang dump is called out so the
# stuck wait site is the first thing a reader sees.
show_log() {
	if grep -q '^=== hang dump' "$1"; then
		echo "recovery_soak: DEADLINE OVERRUN in $1 — stall-sentinel wait-site table and goroutine dump captured:" >&2
		sed -n '/^=== hang dump/,$p' "$1" >&2
		echo "recovery_soak: full log of $1 follows" >&2
	fi
	cat "$1" >&2
}

echo "  -> in-process: 3 sequential node kills, online auto-revive"
"$DIR/pamirun" -recover=auto -dims $DIMS_IN -ppn 1 -deadline 120s -hang-dump \
	-faults "crash@pkt=100,node=1,crash@pkt=220,node=3,crash@pkt=340,node=2" \
	-fault-seed 17 >"$DIR/inproc.log" 2>&1 ||
	{ echo "recovery_soak: in-process run failed; log:" >&2; show_log "$DIR/inproc.log"; exit 1; }
grep -q '3 restore(s)' "$DIR/inproc.log" ||
	{ echo "recovery_soak: expected 3 restores; log:" >&2; show_log "$DIR/inproc.log"; exit 1; }
grep -q 'byte-exact' "$DIR/inproc.log" ||
	{ echo "recovery_soak: in-process digests not byte-exact" >&2; show_log "$DIR/inproc.log"; exit 1; }
grep -q 'last MTTR 0s' "$DIR/inproc.log" &&
	{ echo "recovery_soak: MTTR telemetry never moved" >&2; exit 1; }

run_wire_kill() { # victim_role (listen|join)
	role=$1
	rm -f "$DIR/w_l.log" "$DIR/w_j.log"
	port=$2
	if [ "$role" = listen ]; then
		"$DIR/pamirun" -recover=auto -respawn -spares 2 -dims $DIMS_WIRE -ppn 1 \
			-listen 127.0.0.1:$port -rank-range 0:1 -die-round 7 -deadline 120s -hang-dump >"$DIR/w_l.log" 2>&1 &
		ADDR=$(wait_addr "$DIR/w_l.log")
		"$DIR/pamirun" -recover=auto -dims $DIMS_WIRE -ppn 1 \
			-join "$ADDR" -rank-range 1:2 -deadline 120s -hang-dump >"$DIR/w_j.log" 2>&1 ||
			{ echo "recovery_soak($role): survivor failed; logs:" >&2; show_log "$DIR/w_j.log"; show_log "$DIR/w_l.log"; exit 1; }
		survivor=$DIR/w_j.log victim=$DIR/w_l.log
	else
		"$DIR/pamirun" -recover=auto -dims $DIMS_WIRE -ppn 1 \
			-listen 127.0.0.1:$port -rank-range 0:1 -deadline 120s -hang-dump >"$DIR/w_l.log" 2>&1 &
		ADDR=$(wait_addr "$DIR/w_l.log")
		"$DIR/pamirun" -recover=auto -respawn -spares 2 -dims $DIMS_WIRE -ppn 1 \
			-join "$ADDR" -rank-range 1:2 -die-round 7 -deadline 120s -hang-dump >"$DIR/w_j.log" 2>&1 ||
			{ echo "recovery_soak($role): respawned victim failed; log:" >&2; show_log "$DIR/w_j.log"; exit 1; }
		survivor=$DIR/w_l.log victim=$DIR/w_j.log
	fi
	wait %1 || { echo "recovery_soak($role): background worker failed; log:" >&2; show_log "$DIR/w_l.log"; exit 1; }
	grep -q 'killed by killed; relaunching as incarnation 1' "$victim" ||
		{ echo "recovery_soak($role): the victim was never killed and respawned" >&2; show_log "$victim"; exit 1; }
	grep -q 'restored from its buddy replica: resuming at round [1-9]' "$victim" ||
		{ echo "recovery_soak($role): the respawned victim did not resume from a buddy checkpoint" >&2; show_log "$victim"; exit 1; }
	grep -q '1 restore(s) observed here' "$survivor" ||
		{ echo "recovery_soak($role): the survivor never recorded the restore" >&2; show_log "$survivor"; exit 1; }
	grep -q 'last MTTR 0s' "$survivor" &&
		{ echo "recovery_soak($role): survivor MTTR telemetry never moved" >&2; exit 1; }
	grep -q 'byte-exact' "$DIR/w_l.log" && grep -q 'byte-exact' "$DIR/w_j.log" ||
		{ echo "recovery_soak($role): digests not byte-exact on both sides" >&2; exit 1; }
}

echo "  -> wire: SIGKILL the LISTENER; respawn must rebind the same port and rejoin"
run_wire_kill listen 7861

echo "  -> wire: SIGKILL the DIALER; survivor's redial loop must heal the edge"
run_wire_kill join 7862

echo "  -> recovery soak passed: 5 kills (3 in-process, 2 wire), all healed online, digests byte-exact"
