// Package pamigo is a from-scratch Go reproduction of "PAMI: A Parallel
// Active Message Interface for the Blue Gene/Q Supercomputer" (Kumar et
// al., IPDPS 2012): the PAMI messaging runtime, an MPICH2-style MPI layer
// on top of it, and functional models of every BG/Q hardware substrate
// the paper depends on — the 5D torus, the Message Unit, the L2 atomic
// unit, the wakeup unit, the collective network with classroutes, and the
// CNK process/commthread environment.
//
// Import the public APIs from pamigo/pami and pamigo/mpi. The root
// package exists only to carry the repository-level benchmarks
// (bench_test.go), one per table and figure of the paper's evaluation.
package pamigo
