// Package armci is the public facade of the ARMCI-style one-sided
// runtime built on PAMI — the "other programming paradigms" claim of the
// paper (§III.A) made concrete: it attaches its own PAMI client next to
// any coexisting MPI world and provides symmetric allocation, Put/Get,
// remote fetch-and-add, fence, and a runtime barrier.
package armci

import (
	"pamigo/internal/armci"
	"pamigo/internal/cnk"
	"pamigo/internal/machine"
)

// Runtime is one process's ARMCI instance.
type Runtime = armci.Runtime

// Region is a symmetric allocation addressable from every rank.
type Region = armci.Region

// Attach creates the runtime for a process; collective across the
// machine's processes.
func Attach(m *machine.Machine, p *cnk.Process) (*Runtime, error) {
	return armci.Attach(m, p)
}
