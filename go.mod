module pamigo

go 1.22
