// BenchmarkWarpSpeedup: the classic PHOLD benchmark for parallel
// discrete-event engines — every LP keeps a population of jobs hopping
// to random LPs at random positive delays — run once on the sequential
// oracle and once on the optimistic Time Warp engine at 8 LPs, over an
// identical workload. benchgate tracks the ratio (SeqOracle ns/op over
// Warp8 ns/op) via the speedup_vs entry in BENCH_BASELINE.json, so a
// regression in the warp engine's scaling fails scripts/check.sh even
// when absolute machine speed shifts.
//
// On a multi-core host the ratio is the multicore speedup; on the
// single-core CI container it is the warp engine's overhead factor
// (goroutine scheduling, inbox traffic, GVT rounds) and sits below 1.
// EXPERIMENTS.md records both readings.
package pamigo_test

import (
	"testing"

	"pamigo/internal/sim"
	"pamigo/internal/sim/des"
	"pamigo/internal/sim/warp"
)

const (
	pholdLPs       = 8
	pholdJobsPerLP = 16
	pholdHops      = 150
)

type pholdMsg struct {
	Hops int32
	Tag  uint64
}

type pholdHandler struct{ lps int }

func (h pholdHandler) HandleEvent(p des.Proc, m des.Msg) {
	v := m.(pholdMsg)
	if v.Hops == 0 {
		return
	}
	r := pholdMix(v.Tag)
	dst := int(r % uint64(h.lps))
	delay := sim.Time(1+r%997) * sim.Nanosecond
	p.Send(dst, p.Now()+delay, pholdMsg{Hops: v.Hops - 1, Tag: pholdMix(r)})
}

func pholdMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func pholdRun(b *testing.B, mk func() des.Engine) {
	b.Helper()
	b.ReportAllocs()
	var end sim.Time
	for i := 0; i < b.N; i++ {
		eng := mk()
		for lp := 0; lp < pholdLPs; lp++ {
			for j := 0; j < pholdJobsPerLP; j++ {
				eng.Post(lp, 0, pholdMsg{Hops: pholdHops, Tag: uint64(lp*pholdJobsPerLP + j)})
			}
		}
		end = eng.Run(pholdHandler{lps: pholdLPs})
	}
	b.ReportMetric(float64(pholdLPs*pholdJobsPerLP*(pholdHops+1)), "events/op")
	_ = end
}

func BenchmarkWarpSpeedup_SeqOracle(b *testing.B) {
	pholdRun(b, func() des.Engine { return des.NewSeq(pholdLPs) })
}

func BenchmarkWarpSpeedup_Warp8(b *testing.B) {
	// The optimism window (~ the mean hop delay, picked by sweeping)
	// keeps rollback thrash bounded: without it an LP that gets a long
	// scheduling quantum races hundreds of events ahead and every
	// straggler triggers a cascade of wasted re-execution — three
	// orders of magnitude slower on a single-core host.
	pholdRun(b, func() des.Engine {
		return warp.New(pholdLPs, warp.Options{Window: 500 * sim.Nanosecond})
	})
}
