// Command msgrate runs the paper's message-rate microbenchmark (figure 5
// workload) on the functional machine and reports the wall-clock rate of
// the Go implementation in million messages per second.
//
// Usage:
//
//	msgrate -layer pami -ppn 4
//	msgrate -layer mpi -ppn 4 -commthreads
//	msgrate -layer mpi -ppn 1 -wildcard
//
// A fault plan with a flood@ verb switches to the many-to-one overload
// workload instead: `senders` tasks blast the flooded node's endpoint
// and the run reports how flow control bounded the damage. Storm verbs
// (drop/dup/corrupt) may ride along:
//
//	msgrate -faults "flood@node=0" -budget 64 -senders 32
//	msgrate -faults "drop=0.10,flood@node=2" -budget 64
package main

import (
	"flag"
	"fmt"
	"log"

	"pamigo/internal/bench"
	"pamigo/internal/fault"
	"pamigo/internal/mpilib"
	"pamigo/internal/profiles"
)

func main() {
	layer := flag.String("layer", "mpi", "messaging layer: pami or mpi")
	ppn := flag.Int("ppn", 1, "processes per node (power of two, <= 8 for this workload)")
	window := flag.Int("window", 500, "messages per process per repetition")
	reps := flag.Int("reps", 5, "measured repetitions")
	commthreads := flag.Bool("commthreads", false, "enable communication threads (mpi layer)")
	wildcard := flag.Bool("wildcard", false, "post receives with MPI_ANY_SOURCE (mpi layer)")
	threadOpt := flag.Bool("threadopt", true, "use the thread-optimized MPI build")
	stats := flag.Bool("stats", false, "print the machine's telemetry totals after the run")
	faults := flag.String("faults", "", "fault plan; a flood@node=N verb selects the overload workload")
	faultSeed := flag.Int64("fault-seed", 1, "deterministic seed for the fault plan")
	budget := flag.Int("budget", 0, "unexpected-message budget for the flood workload (0 = library default)")
	senders := flag.Int("senders", 32, "flooding tasks for the flood workload")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	stopProfiles, err := profiles.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatalf("msgrate: %v", err)
	}
	defer stopProfiles()

	if *faults != "" {
		plan, err := fault.ParsePlan(*faults)
		if err != nil {
			log.Fatalf("msgrate: %v", err)
		}
		if !plan.HasFloods() {
			log.Fatalf("msgrate: -faults needs a flood@node=N verb here (plain storms belong to pamirun)")
		}
		rep, snap, err := bench.OverloadFlood(*senders, *window, *budget, &plan, *faultSeed)
		if err != nil {
			log.Fatalf("msgrate: %v", err)
		}
		fmt.Println(rep)
		if *stats {
			fmt.Print(snap.RenderTotals())
		}
		return
	}

	switch *layer {
	case "pami":
		rate, snap, err := bench.MessageRatePAMI(*ppn, *window, *reps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("PAMI message rate: %.3f MMPS (PPN=%d, window=%d, reps=%d)\n",
			rate, *ppn, *window, *reps)
		if *stats {
			fmt.Print(snap.RenderTotals())
		}
	case "mpi":
		lib := mpilib.Classic
		if *threadOpt {
			lib = mpilib.ThreadOptimized
		}
		cfg := bench.MessageRateConfig{
			PPN:      *ppn,
			Window:   *window,
			Reps:     *reps,
			Wildcard: *wildcard,
			Opts: mpilib.Options{
				Library:            lib,
				CommThreads:        *commthreads,
				DisableCommThreads: !*commthreads,
			},
		}
		rate, snap, err := bench.MessageRateMPI(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("MPI message rate: %.3f MMPS (PPN=%d, commthreads=%v, wildcard=%v, %v build)\n",
			rate, *ppn, *commthreads, *wildcard, lib)
		if *stats {
			fmt.Print(snap.RenderTotals())
		}
	default:
		log.Fatalf("msgrate: unknown layer %q (want pami or mpi)", *layer)
	}
}
