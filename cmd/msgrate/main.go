// Command msgrate runs the paper's message-rate microbenchmark (figure 5
// workload) on the functional machine and reports the wall-clock rate of
// the Go implementation in million messages per second.
//
// Usage:
//
//	msgrate -layer pami -ppn 4
//	msgrate -layer mpi -ppn 4 -commthreads
//	msgrate -layer mpi -ppn 1 -wildcard
package main

import (
	"flag"
	"fmt"
	"log"

	"pamigo/internal/bench"
	"pamigo/internal/mpilib"
)

func main() {
	layer := flag.String("layer", "mpi", "messaging layer: pami or mpi")
	ppn := flag.Int("ppn", 1, "processes per node (power of two, <= 8 for this workload)")
	window := flag.Int("window", 500, "messages per process per repetition")
	reps := flag.Int("reps", 5, "measured repetitions")
	commthreads := flag.Bool("commthreads", false, "enable communication threads (mpi layer)")
	wildcard := flag.Bool("wildcard", false, "post receives with MPI_ANY_SOURCE (mpi layer)")
	threadOpt := flag.Bool("threadopt", true, "use the thread-optimized MPI build")
	stats := flag.Bool("stats", false, "print the machine's telemetry totals after the run")
	flag.Parse()

	switch *layer {
	case "pami":
		rate, snap, err := bench.MessageRatePAMI(*ppn, *window, *reps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("PAMI message rate: %.3f MMPS (PPN=%d, window=%d, reps=%d)\n",
			rate, *ppn, *window, *reps)
		if *stats {
			fmt.Print(snap.RenderTotals())
		}
	case "mpi":
		lib := mpilib.Classic
		if *threadOpt {
			lib = mpilib.ThreadOptimized
		}
		cfg := bench.MessageRateConfig{
			PPN:      *ppn,
			Window:   *window,
			Reps:     *reps,
			Wildcard: *wildcard,
			Opts: mpilib.Options{
				Library:            lib,
				CommThreads:        *commthreads,
				DisableCommThreads: !*commthreads,
			},
		}
		rate, snap, err := bench.MessageRateMPI(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("MPI message rate: %.3f MMPS (PPN=%d, commthreads=%v, wildcard=%v, %v build)\n",
			rate, *ppn, *commthreads, *wildcard, lib)
		if *stats {
			fmt.Print(snap.RenderTotals())
		}
	default:
		log.Fatalf("msgrate: unknown layer %q (want pami or mpi)", *layer)
	}
}
