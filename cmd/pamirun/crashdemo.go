package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pamigo/internal/cnk"
	"pamigo/internal/collnet"
	"pamigo/internal/core"
	"pamigo/internal/fault"
	"pamigo/internal/machine"
	"pamigo/internal/mu"
)

// The crash-recovery demo: an iterative allreduce job that checkpoints
// every few steps, loses a node to the fault plan mid-run, detects the
// death through heartbeats, fails over survivors with typed errors, and
// finishes byte-exact after a restore from the last checkpoint.
//
// The workload runs on an *unoptimized* core geometry so the collectives
// take the software path over MU packets — that keeps the injector's
// packet counter (which arms crash@pkt=N triggers) advancing, and
// exercises the epoch-aware swWait cancellation.
const (
	ckWords = 256 // state vector: 256 uint64 words = 2 KiB on the wire
	ckEvery = 4   // checkpoint interval in steps
	ckSteps = 128 // total steps the job must complete
)

// contrib fills dst with rank's deterministic step contribution. The
// final state is a pure function of (steps, ranks), so the driver can
// compute the expected answer without a reference run.
func contrib(dst []uint64, step, rank int) {
	for w := range dst {
		dst[w] = uint64(step+1)*2654435761 ^ uint64(rank+1)*40503 ^ uint64(w)*9176
	}
}

// appBlob is the application checkpoint payload: the step to resume
// from, then the replicated state vector.
func encodeAppBlob(state []uint64, nextStep int) []byte {
	blob := make([]byte, 8+len(state)*8)
	binary.LittleEndian.PutUint64(blob, uint64(nextStep))
	for w, v := range state {
		binary.LittleEndian.PutUint64(blob[8+w*8:], v)
	}
	return blob
}

func decodeAppBlob(blob []byte) (state []uint64, nextStep int, err error) {
	if len(blob) < 8 || (len(blob)-8)%8 != 0 {
		return nil, 0, fmt.Errorf("malformed application blob of %d bytes", len(blob))
	}
	nextStep = int(binary.LittleEndian.Uint64(blob))
	state = make([]uint64, (len(blob)-8)/8)
	for w := range state {
		state[w] = binary.LittleEndian.Uint64(blob[8+w*8:])
	}
	return state, nextStep, nil
}

// ctrlBarrier is a reusable task barrier over the out-of-band control
// network (the real machine's service network, which does not ride the
// torus). Await fails instead of blocking forever when the membership
// epoch moves: a dead task is never going to arrive.
type ctrlBarrier struct {
	m       *machine.Machine
	parties int
	base    int64 // the epoch the run started at; a move past it aborts

	mu      sync.Mutex
	arrived int
	ch      chan struct{}
}

func newCtrlBarrier(m *machine.Machine, parties int) *ctrlBarrier {
	return newCtrlBarrierAt(m, parties, 0)
}

// newCtrlBarrierAt builds a barrier for a run that started at a nonzero
// membership epoch (a post-recovery generation: earlier deaths are
// history, only a further death aborts).
func newCtrlBarrierAt(m *machine.Machine, parties int, base int64) *ctrlBarrier {
	return &ctrlBarrier{m: m, parties: parties, base: base, ch: make(chan struct{})}
}

func (b *ctrlBarrier) Await() error {
	b.mu.Lock()
	b.arrived++
	if b.arrived == b.parties {
		close(b.ch)
		b.arrived = 0
		b.ch = make(chan struct{})
		b.mu.Unlock()
		return nil
	}
	ch := b.ch
	ord := int64(b.arrived)
	b.mu.Unlock()
	// Epoch polling cadence comes from the fault-plan seed, desynchronized
	// per arrival order — deterministic for a given plan, never in lockstep
	// across parties.
	seed := b.m.Config().FaultSeed
	for step := int64(1); ; step++ {
		select {
		case <-ch:
			return nil
		case <-time.After(fault.Jitter(seed, ord<<32|step, 100*time.Microsecond)):
			if b.m.Epoch() != b.base {
				return fmt.Errorf("membership changed at the control barrier: %w", mu.ErrEpochChanged)
			}
		}
	}
}

// ckCoord is the checkpoint coordinator state shared by a run's tasks:
// the latest encoded snapshot and the quiesce barrier.
type ckCoord struct {
	m   *machine.Machine
	bar *ctrlBarrier

	ckOK atomic.Bool

	mu        sync.Mutex
	saved     []byte // latest Checkpoint.Encode output
	savedStep int
}

func (c *ckCoord) store(enc []byte, step int) {
	c.mu.Lock()
	c.saved, c.savedStep = enc, step
	c.mu.Unlock()
}

func (c *ckCoord) latest() ([]byte, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saved, c.savedStep
}

// checkpointRound quiesces the job and snapshots it: every task stops
// sending (the step structure guarantees it), drains its context, and
// rank 0 captures the machine state plus the replicated vector. If a
// straggler packet lands after a drain, Checkpoint refuses (the machine
// is not quiescent) and the round drains again.
func checkpointRound(co *ckCoord, ctx *core.Context, rank int, state []uint64, nextStep int) error {
	for {
		if err := co.bar.Await(); err != nil {
			return err
		}
		ctx.Drain()
		if err := co.bar.Await(); err != nil {
			return err
		}
		if rank == 0 {
			co.ckOK.Store(false)
			ck, err := co.m.Checkpoint(map[string][]byte{"app": encodeAppBlob(state, nextStep)})
			if err == nil {
				var enc []byte
				if enc, err = ck.Encode(); err == nil {
					co.store(enc, nextStep)
					co.ckOK.Store(true)
				}
			}
		}
		if err := co.bar.Await(); err != nil {
			return err
		}
		if co.ckOK.Load() {
			return nil
		}
	}
}

// runSteps executes steps [start, end) of the iterative allreduce on one
// task, checkpointing every ckEvery steps, and returns the final state,
// the step it stopped at, and the failure (nil when it ran to
// completion). The caller seeds state from the checkpoint being resumed.
func runSteps(m *machine.Machine, p *cnk.Process, co *ckCoord, seed []uint64, start, end int) ([]uint64, int, error) {
	cl, err := core.NewClient(m, p, "crashdemo")
	if err != nil {
		return nil, start, err
	}
	ctxs, err := cl.CreateContexts(1)
	if err != nil {
		return nil, start, err
	}
	ctx := ctxs[0]
	tasks := make([]int, m.Tasks())
	for i := range tasks {
		tasks[i] = i
	}
	g, err := cl.CreateGeometry(ctx, 1, tasks)
	if err != nil {
		return nil, start, err
	}

	state := append([]uint64(nil), seed...)
	mine := make([]uint64, ckWords)
	send := make([]byte, ckWords*8)
	recv := make([]byte, ckWords*8)
	for step := start; step < end; step++ {
		if m.Crashed(cl.Task()) {
			// The process is gone: on the real machine it simply stops
			// executing. Cooperative analogue — return without a word.
			return state, step, errCrashed
		}
		contrib(mine, step, g.Rank())
		for w, v := range mine {
			binary.LittleEndian.PutUint64(send[w*8:], v)
		}
		if err := g.Allreduce(send, recv, collnet.OpAdd, collnet.Uint64); err != nil {
			return state, step, err
		}
		for w := range state {
			state[w] += binary.LittleEndian.Uint64(recv[w*8:])
		}
		if (step+1)%ckEvery == 0 && step+1 < end {
			if err := checkpointRound(co, ctx, g.Rank(), state, step+1); err != nil {
				return state, step + 1, err
			}
		}
	}
	return state, end, nil
}

var errCrashed = errors.New("process crashed")

// runCrashRecovery is the -faults crash@/hang@ driver: faulted run,
// detection, restore, byte-exact completion.
func runCrashRecovery(cfg machine.Config, verbose bool) error {
	nTasks := cfg.Dims.Nodes() * cfg.PPN

	// Expected final state, computed analytically.
	expected := make([]uint64, ckWords)
	tmp := make([]uint64, ckWords)
	for step := 0; step < ckSteps; step++ {
		for r := 0; r < nTasks; r++ {
			contrib(tmp, step, r)
			for w, v := range tmp {
				expected[w] += v
			}
		}
	}

	// Fast detection so the demo turns around in milliseconds; override
	// with -dims scale in mind if you raise PPN.
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 200 * time.Microsecond
	}
	if cfg.PhiThreshold == 0 {
		cfg.PhiThreshold = 6
	}

	m, err := machine.New(cfg)
	if err != nil {
		return err
	}
	co := &ckCoord{m: m, bar: newCtrlBarrier(m, nTasks)}
	// Base checkpoint at step 0: a freshly booted machine is trivially
	// quiescent, and a crash before the first periodic snapshot then
	// restarts from the beginning instead of failing the job.
	ck0, err := m.Checkpoint(map[string][]byte{"app": encodeAppBlob(make([]uint64, ckWords), 0)})
	if err != nil {
		return fmt.Errorf("base checkpoint: %v", err)
	}
	enc0, err := ck0.Encode()
	if err != nil {
		return err
	}
	co.store(enc0, 0)

	var typedFailures, crashedTasks, completed atomic.Int64
	start := time.Now()
	m.Run(func(p *cnk.Process) {
		_, stop, err := runSteps(m, p, co, make([]uint64, ckWords), 0, ckSteps)
		switch {
		case err == nil:
			completed.Add(1)
		case errors.Is(err, errCrashed):
			crashedTasks.Add(1)
		case errors.Is(err, mu.ErrPeerDead) || errors.Is(err, mu.ErrEpochChanged):
			typedFailures.Add(1)
			if verbose {
				fmt.Printf("task %d stopped at step %d: %v\n", p.TaskRank(), stop, err)
			}
		default:
			// Anything untyped is a bug, not an injected failure.
			panic(fmt.Sprintf("task %d: untyped failure at step %d: %v", p.TaskRank(), stop, err))
		}
	})
	detectLatency := time.Since(start)

	var deadNodes string
	deaths := int64(0)
	if h := m.Health(); h != nil {
		deaths = h.Epoch()
		deadNodes = fmt.Sprint(h.DeadNodes())
	}
	m.Shutdown()
	if deaths == 0 {
		return fmt.Errorf("the fault plan never killed a node within %d steps "+
			"(all %d tasks finished); lower the crash@pkt threshold", ckSteps, completed.Load())
	}
	if typedFailures.Load() == 0 {
		return fmt.Errorf("a node died but no survivor saw a typed failure")
	}
	savedEnc, savedStep := co.latest()
	fmt.Printf("crash detected: %d node(s) %s confirmed dead in %v; %d survivors failed over "+
		"with typed errors, %d task(s) crashed\n",
		deaths, deadNodes, detectLatency.Round(time.Millisecond), typedFailures.Load(), crashedTasks.Load())
	fmt.Printf("restoring from the step-%d checkpoint (%d bytes)\n", savedStep, len(savedEnc))

	// Phase 2: decode the snapshot, boot a repaired partition, resume.
	ck, err := machine.DecodeCheckpoint(savedEnc)
	if err != nil {
		return err
	}
	m2, err := machine.Restore(ck)
	if err != nil {
		return err
	}
	seed, resumeStep, err := decodeAppBlob(ck.Blob("app"))
	if err != nil {
		return err
	}
	co2 := &ckCoord{m: m2, bar: newCtrlBarrier(m2, nTasks)}
	var exact, inexact atomic.Int64
	m2.Run(func(p *cnk.Process) {
		state, _, err := runSteps(m2, p, co2, seed, resumeStep, ckSteps)
		if err != nil {
			panic(fmt.Sprintf("task %d failed after restore: %v", p.TaskRank(), err))
		}
		ok := true
		for w := range state {
			if state[w] != expected[w] {
				ok = false
				break
			}
		}
		if ok {
			exact.Add(1)
		} else {
			inexact.Add(1)
		}
	})
	m2.Shutdown()
	if inexact.Load() != 0 {
		return fmt.Errorf("%d task(s) finished with a state that is NOT byte-exact", inexact.Load())
	}
	fmt.Printf("restored run resumed at step %d and completed %d steps: "+
		"all %d tasks byte-exact\n", resumeStep, ckSteps, exact.Load())
	return nil
}
