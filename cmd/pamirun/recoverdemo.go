package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"pamigo/internal/cnk"
	"pamigo/internal/core"
	"pamigo/internal/fault"
	"pamigo/internal/machine"
	"pamigo/internal/recovery"
	"pamigo/internal/torus"
	"pamigo/internal/wire"
)

// The self-healing demo (-recover=auto): an all-to-all digest workload
// over buddy-replicated in-memory checkpoints with *online* recovery —
// no whole-run quiescence, no generation reboot. Each task folds every
// task's deterministic per-round contribution into a running digest,
// checkpointing the (round, digest) pair every -buddy-interval rounds;
// the snapshot lands locally and on the buddy node in a different
// failure domain. When a node dies, the victim comes back (auto-revive
// in-process; respawn + wire rejoin across processes), restores from
// the buddy's replica, and replays forward — lost contributions are
// re-requested from their sources, which recompute them (they are pure
// functions of (round, src, dst), so replay needs no history buffers).
// Unaffected tasks never stop making progress.
//
// The final digest of every task is compared against the analytic
// fault-free value: a run with kills must end byte-exact with a run
// without them.
const (
	rcRounds    = 24 // digest rounds every task must fold
	rcLookahead = 2  // rounds a producer may run ahead of its own fold point

	rcDispSig    = 21 // contribution: meta = round u32, data = value u64
	rcDispReplay = 22 // replay request: meta = from-round u32
	rcDispDone   = 23 // completion announcement (wire mode)
)

// rcVal is task src's contribution payload for one round.
func rcVal(round, src int) uint64 {
	x := uint64(round+1)*0x9e3779b97f4a7c15 ^ uint64(src+1)*0xc2b2ae3d27d4eb4f
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

// rcSigOf mixes a received contribution with its (round, src, dst)
// coordinates — the value actually folded into dst's digest, so a
// payload replayed under the wrong coordinates cannot verify.
func rcSigOf(round, src, dst int, val uint64) uint64 {
	return val ^ uint64(round+1)<<32 ^ uint64(src+1)<<16 ^ uint64(dst+1)
}

// rcExpectedDigest is the analytic fault-free digest for one task:
// rounds ascending, sources ascending, FNV-style fold.
func rcExpectedDigest(task, nTasks, rounds int) uint64 {
	dg := uint64(0)
	for r := 0; r < rounds; r++ {
		for src := 0; src < nTasks; src++ {
			dg = dg*1099511628211 ^ rcSigOf(r, src, task, rcVal(r, src))
		}
	}
	return dg
}

var errRCCrashed = errors.New("task crashed")

// rcTask is one task's run state. Every field is touched only from the
// task's own goroutine: dispatch handlers run inside its Advance calls,
// so no locks are needed.
type rcTask struct {
	m       *machine.Machine
	sup     *recovery.Supervisor
	ctx     *core.Context
	task    int
	nTasks  int
	ckEvery int
	verbose bool

	dieRound int // wire chaos: SIGKILL self at this round; -1 = never

	folded      int               // rounds folded into the digest
	digest      uint64            // the running digest
	sentThrough int               // rounds whose contribution we have produced
	got         map[[2]int]uint64 // (round, src) -> sig; insert-once, never deleted
	replayReq   map[int]int       // src -> from-round to re-send our contributions
	doneFrom    map[int]bool      // tasks that announced completion (wire mode)
	lastAsk     map[int]time.Time // per-source replay-request throttle
	lastDone    time.Time         // done-rebroadcast throttle
	completed   bool
	announced   bool
	idleStep    int64
}

func newRCTask(m *machine.Machine, ctx *core.Context, task, ckEvery, dieRound int, verbose bool) (*rcTask, error) {
	r := &rcTask{
		m: m, sup: m.Recovery(), ctx: ctx,
		task: task, nTasks: m.Tasks(), ckEvery: ckEvery, dieRound: dieRound, verbose: verbose,
		got:       make(map[[2]int]uint64),
		replayReq: make(map[int]int),
		doneFrom:  make(map[int]bool),
		lastAsk:   make(map[int]time.Time),
	}
	if err := ctx.RegisterDispatch(rcDispSig, func(_ *core.Context, d *core.Delivery) {
		if len(d.Meta) != 4 || len(d.Data) != 8 {
			return
		}
		round := int(binary.LittleEndian.Uint32(d.Meta))
		if round < r.folded || round >= rcRounds {
			return // already covered by the restored digest, or junk
		}
		key := [2]int{round, d.Origin.Task}
		if _, dup := r.got[key]; dup {
			return
		}
		r.got[key] = rcSigOf(round, d.Origin.Task, r.task, binary.LittleEndian.Uint64(d.Data))
	}); err != nil {
		return nil, err
	}
	if err := ctx.RegisterDispatch(rcDispReplay, func(_ *core.Context, d *core.Delivery) {
		if len(d.Meta) != 4 {
			return
		}
		from := int(binary.LittleEndian.Uint32(d.Meta))
		if cur, ok := r.replayReq[d.Origin.Task]; !ok || from < cur {
			r.replayReq[d.Origin.Task] = from
		}
	}); err != nil {
		return nil, err
	}
	if err := ctx.RegisterDispatch(rcDispDone, func(_ *core.Context, d *core.Delivery) {
		r.doneFrom[d.Origin.Task] = true
	}); err != nil {
		return nil, err
	}
	return r, nil
}

// sendSig ships our round contribution to dst (self-delivery folds
// directly). Transient refusals and peer deaths ride SendRetry — a dead
// destination stalls this sender until the revival chain brings it
// back, which is exactly the online-recovery contract: no abort, no
// global quiescence, just one paused edge.
func (r *rcTask) sendSig(round, dst int) error {
	if dst == r.task {
		key := [2]int{round, r.task}
		if _, dup := r.got[key]; !dup && round >= r.folded {
			r.got[key] = rcSigOf(round, r.task, r.task, rcVal(round, r.task))
		}
		return nil
	}
	meta := make([]byte, 4)
	binary.LittleEndian.PutUint32(meta, uint32(round))
	data := make([]byte, 8)
	binary.LittleEndian.PutUint64(data, rcVal(round, r.task))
	return r.ctx.SendRetry(dst, 60*time.Second, func() error {
		return r.ctx.SendImmediate(core.Endpoint{Task: dst}, rcDispSig, meta, data)
	})
}

// serveReplay re-sends our contributions from each requested round on —
// recomputed, not remembered. Requests land in the dispatch handler;
// the sends happen here, on the poll loop, never from the handler.
func (r *rcTask) serveReplay() error {
	for src, from := range r.replayReq {
		delete(r.replayReq, src)
		for round := from; round < r.sentThrough; round++ {
			if err := r.sendSig(round, src); err != nil {
				return err
			}
		}
	}
	return nil
}

// produce sends the next round's contribution to every task, bounded by
// the lookahead so a fast producer cannot run away from a stalled
// folder (and so a kill loses at most lookahead rounds of its sends).
func (r *rcTask) produce() error {
	if r.sentThrough >= rcRounds || r.sentThrough >= r.folded+rcLookahead {
		return nil
	}
	round := r.sentThrough
	if r.dieRound >= 0 && round == r.dieRound {
		fmt.Printf("task %d reached round %d: SIGKILL self (pid %d)\n", r.task, round, os.Getpid())
		_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // the signal is not survivable; never fall through
	}
	for dst := 0; dst < r.nTasks; dst++ {
		if err := r.sendSig(round, dst); err != nil {
			return err
		}
	}
	r.sentThrough++
	return nil
}

// fold consumes completed rounds in order and checkpoints on the
// interval. The fold order (rounds ascending, sources ascending) is
// fixed, so the digest is byte-exact regardless of arrival order.
func (r *rcTask) fold() error {
	for r.folded < rcRounds {
		for src := 0; src < r.nTasks; src++ {
			if _, ok := r.got[[2]int{r.folded, src}]; !ok {
				return nil // round incomplete; askMissing chases it
			}
		}
		for src := 0; src < r.nTasks; src++ {
			r.digest = r.digest*1099511628211 ^ r.got[[2]int{r.folded, src}]
		}
		r.folded++
		if r.folded%r.ckEvery == 0 || r.folded == rcRounds {
			blob := make([]byte, 8)
			binary.LittleEndian.PutUint64(blob, r.digest)
			if err := r.sup.Checkpoint(torus.Rank(r.task), uint64(r.folded), blob); err != nil {
				return err
			}
		}
	}
	return nil
}

// askMissing requests replay of the round we are stuck on from every
// source that has not contributed it, throttled per source. Demand-
// driven in both directions: a restored victim asks for what it lost,
// and survivors ask a restored victim for the contributions its dead
// incarnation swallowed. Duplicate deliveries are insert-once no-ops.
func (r *rcTask) askMissing() error {
	if r.folded >= rcRounds {
		return nil
	}
	now := time.Now()
	meta := make([]byte, 4)
	binary.LittleEndian.PutUint32(meta, uint32(r.folded))
	for src := 0; src < r.nTasks; src++ {
		if src == r.task {
			continue
		}
		if _, ok := r.got[[2]int{r.folded, src}]; ok {
			continue
		}
		if now.Sub(r.lastAsk[src]) < 10*time.Millisecond {
			continue
		}
		r.lastAsk[src] = now
		if err := r.ctx.SendRetry(src, 60*time.Second, func() error {
			return r.ctx.SendImmediate(core.Endpoint{Task: src}, rcDispReplay, meta, nil)
		}); err != nil {
			return err
		}
	}
	return nil
}

// announceDone broadcasts completion (wire mode), re-broadcast on a
// throttle until every task has answered in kind. The broadcast goes to
// every live peer each time — never only to the ones we have not heard
// from, because a peer that finished a beat after us still needs OUR
// done even though we already hold its. And it never blocks on a dead
// peer: a cleanly exited peer has already delivered its done (its
// pre-exit quiesce guarantees the ack), and a crashed one will be asked
// again on the next throttled round after it rejoins.
func (r *rcTask) announceDone() error {
	if !r.announced {
		r.announced = true
		r.doneFrom[r.task] = true
	} else if time.Since(r.lastDone) < 20*time.Millisecond {
		return nil
	}
	r.lastDone = time.Now()
	for dst := 0; dst < r.nTasks; dst++ {
		if dst == r.task || !r.m.Alive(dst) {
			continue
		}
		err := r.ctx.SendImmediate(core.Endpoint{Task: dst}, rcDispDone, nil, nil)
		if err != nil && !core.Transient(err) && !core.Recoverable(err) {
			return err
		}
	}
	return nil
}

func (r *rcTask) allDone() bool {
	for t := 0; t < r.nTasks; t++ {
		if !r.doneFrom[t] {
			return false
		}
	}
	return true
}

// run drives the task from a resume point to completion. In-process
// (exchangeDone false) the driver owns global completion: onComplete
// fires once when this task folds out, and the task keeps draining its
// inbound queue until stop closes. Over the wire (exchangeDone true)
// completion is negotiated with done announcements, and the task drains
// the transport's unacked windows before returning so a fast exiter
// cannot turn a clean finish into a spurious peer death.
func (r *rcTask) run(start int, seedDigest uint64, exchangeDone bool, onComplete func(), stop <-chan struct{}) error {
	r.folded, r.digest, r.sentThrough = start, seedDigest, start
	r.completed, r.announced = false, false
	for {
		if r.m.Crashed(r.task) {
			return errRCCrashed
		}
		if err := r.serveReplay(); err != nil {
			return err
		}
		if err := r.produce(); err != nil {
			return err
		}
		if err := r.fold(); err != nil {
			return err
		}
		if err := r.askMissing(); err != nil {
			return err
		}
		if r.folded >= rcRounds && !r.completed {
			r.completed = true
			if onComplete != nil {
				onComplete()
			}
		}
		if exchangeDone && r.completed {
			if err := r.announceDone(); err != nil {
				return err
			}
			if r.allDone() {
				return r.quiesceWire()
			}
		}
		if !exchangeDone && r.completed {
			select {
			case <-stop:
				return nil
			default:
			}
		}
		// An idle iteration must genuinely yield the CPU: on a small box
		// a bare busy-spin here starves this process's own heartbeat
		// writer (and, cross-process, the peer's) long enough to trip
		// the phi detector into a false mutual death.
		if r.ctx.AdvanceAuto() == 0 {
			r.idleStep++
			time.Sleep(fault.Jitter(int64(r.task), r.idleStep, 150*time.Microsecond))
		} else {
			runtime.Gosched()
		}
	}
}

// quiesceWire holds the task until the wire transport has no unacked
// frames in flight, pumping acks the whole time. Quiesced skips
// confirmed-dead peers, so this terminates even across a death.
func (r *rcTask) quiesceWire() error {
	w := r.m.Wire()
	if w == nil {
		return nil
	}
	for step := int64(1); w.Quiesced() != nil; step++ {
		r.ctx.AdvanceAuto()
		time.Sleep(fault.Jitter(r.m.Config().FaultSeed, int64(r.task)<<40|0x3e<<32|step, 100*time.Microsecond))
	}
	return nil
}

// runRecoverDemo is the single-process -recover=auto driver: the fault
// plan kills nodes mid-run, the supervisor auto-revives each victim
// online, the victim's task relaunches from the buddy replica, and
// every task's final digest must equal the analytic fault-free value.
func runRecoverDemo(cfg machine.Config, ckEvery int, verbose bool) error {
	if cfg.PPN != 1 {
		return fmt.Errorf("-recover=auto runs at -ppn 1 (one checkpoint domain per node)")
	}
	if cfg.Faults == nil || !cfg.Faults.HasNodeFaults() {
		return fmt.Errorf(`-recover=auto needs a node-fault plan to heal from, e.g. -faults "crash@pkt=600,node=2"`)
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 200 * time.Microsecond
	}
	if cfg.PhiThreshold == 0 {
		cfg.PhiThreshold = 6
	}
	cfg.Recovery = &recovery.Options{
		AutoRevive:  true,
		SettleDelay: 2 * time.Millisecond,
		Seed:        cfg.FaultSeed,
	}
	m, err := machine.New(cfg)
	if err != nil {
		return err
	}
	sup := m.Recovery()
	n := m.Tasks()
	fmt.Printf("self-healing run armed: %d tasks, %d rounds, buddy checkpoint every %d round(s), node 0's buddy is node %d\n",
		n, rcRounds, ckEvery, sup.Buddy(0))

	// Clients, contexts, and task state are built once and survive each
	// task's crash/revive cycles: the revival chain resets the transport
	// state underneath them, and run() reseeds the digest cursor.
	rcs := make([]*rcTask, n)
	for task := 0; task < n; task++ {
		cl, err := core.NewClient(m, m.Task(task), "recoverdemo")
		if err != nil {
			return err
		}
		ctxs, err := cl.CreateContexts(1)
		if err != nil {
			return err
		}
		if rcs[task], err = newRCTask(m, ctxs[0], task, ckEvery, -1, verbose); err != nil {
			return err
		}
	}

	var mu sync.Mutex
	doneTasks := make(map[int]bool)
	digests := make(map[int]uint64)
	allDone := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()

	var launch func(task, resume int, seedDg uint64)
	launch = func(task, resume int, seedDg uint64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rc := rcs[task]
			err := rc.run(resume, seedDg, false, func() {
				mu.Lock()
				digests[task] = rc.digest
				if !doneTasks[task] {
					doneTasks[task] = true
					if len(doneTasks) == n {
						close(allDone)
					}
				}
				mu.Unlock()
			}, allDone)
			if errors.Is(err, errRCCrashed) {
				if verbose {
					fmt.Printf("task %d crashed with %d round(s) folded\n", task, rc.folded)
				}
				return // the supervisor's OnRestore relaunches it
			}
			if err != nil {
				panic(fmt.Sprintf("task %d: %v", task, err))
			}
		}()
	}

	sup.OnRestore(func(s *recovery.Snapshot) {
		resume, dg := 0, uint64(0)
		if s.Version > 0 && len(s.Data) == 8 {
			resume, dg = int(s.Version), binary.LittleEndian.Uint64(s.Data)
		}
		fmt.Printf("node %d restored from its buddy replica: resuming at round %d, %v into the run\n",
			s.Node, resume, time.Since(start).Round(time.Millisecond))
		launch(int(s.Node), resume, dg)
	})
	for task := 0; task < n; task++ {
		launch(task, 0, 0)
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := m.Telemetry().Snapshot()
	restores, _ := snap.Counter("recovery.restores")
	ckpts, _ := snap.Counter("recovery.checkpoints")
	mttr, _ := snap.Gauge("recovery.mttr_ns")
	epoch := m.Epoch()
	m.Shutdown()

	if restores == 0 {
		return fmt.Errorf("the fault plan never killed a node (0 restores across %d rounds); lower the crash@pkt threshold", rcRounds)
	}
	for task := 0; task < n; task++ {
		want := rcExpectedDigest(task, n, rcRounds)
		if digests[task] != want {
			return fmt.Errorf("task %d digest %016x, want %016x — NOT byte-exact after recovery", task, digests[task], want)
		}
		if verbose {
			fmt.Printf("task %d digest %016x\n", task, digests[task])
		}
	}
	fmt.Printf("self-healed run passed in %v: %d restore(s), %d checkpoint(s), last MTTR %v, epoch %d, all %d digests byte-exact\n",
		elapsed.Round(time.Millisecond), restores, ckpts,
		time.Duration(mttr.Value).Round(10*time.Microsecond), epoch, n)
	return nil
}

// runWireRecover is the multi-process -recover=auto worker: the same
// digest workload with the partition spanning OS processes. A SIGKILLed
// process is relaunched by the -respawn supervisor with a bumped
// incarnation; it rejoins over the wire handshake (survivors revive its
// nodes and push the buddy replicas back), restores, and replays.
// Survivors never stop: their sends toward the dead range stall on
// SendRetry until the revival lands, then flow again.
func runWireRecover(cfg machine.Config, wf wireFlags, incarnation uint, ckEvery int, verbose bool) error {
	if cfg.PPN != 1 {
		return fmt.Errorf("-recover=auto runs at -ppn 1 (one checkpoint domain per node)")
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 2 * time.Millisecond
	}
	if cfg.PhiThreshold == 0 {
		cfg.PhiThreshold = 10
	}
	cfg.HostedLo, cfg.HostedHi = wf.lo, wf.hi
	cfg.Wire = &wire.Options{
		Listen: wf.listen, Join: wf.join, Partition: wf.partition,
		Seed: cfg.FaultSeed, DropProb: wf.drop, CorruptProb: wf.corrupt,
		Incarnation: uint32(incarnation),
	}
	// AutoRevive stays off over the wire: recovery there is respawn +
	// rejoin, and the machine forces it off regardless.
	cfg.Recovery = &recovery.Options{Seed: cfg.FaultSeed}
	m, err := machine.New(cfg)
	if err != nil {
		return err
	}
	defer m.Shutdown()
	if w := m.Wire(); w != nil && wf.listen != "" {
		fmt.Printf("wire listening on %s (hosting tasks [%d,%d), incarnation %d)\n", w.Addr(), wf.lo, wf.hi, incarnation)
	}
	if err := m.WaitWire(wireJoinTimeout); err != nil {
		return fmt.Errorf("assembling the wire partition: %w", err)
	}
	sup := m.Recovery()
	fmt.Printf("wire partition assembled: %d peer process(es), epoch %d\n", len(m.Wire().Peers()), m.Epoch())

	dieRound := wf.dieRound
	if incarnation > 0 {
		dieRound = -1 // die once; the spare incarnation must finish
	}

	// Contexts and dispatch handlers are registered BEFORE awaiting the
	// buddy replica: peers resume sending the moment the rejoin revives
	// this range, and inbound data must have a consumer or it wedges
	// the wire stream the replica itself arrives on (the handlers'
	// insert-once maps hold early contributions until the task starts).
	rcs := make(map[int]*rcTask)
	for task := wf.lo; task < wf.hi; task++ {
		cl, err := core.NewClient(m, m.Task(task), "recoverdemo")
		if err != nil {
			return err
		}
		ctxs, err := cl.CreateContexts(1)
		if err != nil {
			return err
		}
		rc, err := newRCTask(m, ctxs[0], task, ckEvery, dieRound, verbose)
		if err != nil {
			return err
		}
		rcs[task] = rc
	}

	// A respawned incarnation restores its hosted tasks from the buddy
	// replicas the survivors push during the rejoin handshake.
	resume := make(map[int]int)
	seedDg := make(map[int]uint64)
	if incarnation > 0 {
		for task := wf.lo; task < wf.hi; task++ {
			snap, err := sup.AwaitReplica(torus.Rank(task), 15*time.Second)
			if err != nil {
				return fmt.Errorf("restoring task %d from its buddy: %w", task, err)
			}
			if snap.Version > 0 && len(snap.Data) == 8 {
				resume[task] = int(snap.Version)
				seedDg[task] = binary.LittleEndian.Uint64(snap.Data)
			}
			fmt.Printf("task %d restored from its buddy replica: resuming at round %d\n", task, resume[task])
		}
	}

	start := time.Now()
	var mu sync.Mutex
	digests := make(map[int]uint64)
	var firstErr error
	m.Run(func(p *cnk.Process) {
		task := p.TaskRank()
		err := func() error {
			rc := rcs[task]
			if rc == nil {
				return fmt.Errorf("no workload prepared for hosted task %d", task)
			}
			if err := rc.run(resume[task], seedDg[task], true, nil, nil); err != nil {
				return err
			}
			mu.Lock()
			digests[task] = rc.digest
			mu.Unlock()
			return nil
		}()
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("task %d: %w", task, err)
			}
			mu.Unlock()
		}
	})
	if firstErr != nil {
		return firstErr
	}
	elapsed := time.Since(start)

	nTasks := m.Tasks()
	for task := wf.lo; task < wf.hi; task++ {
		want := rcExpectedDigest(task, nTasks, rcRounds)
		if digests[task] != want {
			return fmt.Errorf("task %d digest %016x, want %016x — NOT byte-exact after recovery", task, digests[task], want)
		}
		if verbose {
			fmt.Printf("task %d digest %016x\n", task, digests[task])
		}
	}
	snap := m.Telemetry().Snapshot()
	restores, _ := snap.Counter("recovery.restores")
	ckpts, _ := snap.Counter("recovery.checkpoints")
	mttr, _ := snap.Gauge("recovery.mttr_ns")
	fmt.Printf("wire self-heal passed in %v: tasks [%d,%d) byte-exact, %d restore(s) observed here, %d checkpoint(s), last MTTR %v, epoch %d\n",
		elapsed.Round(time.Millisecond), wf.lo, wf.hi, restores, ckpts,
		time.Duration(mttr.Value).Round(10*time.Microsecond), m.Epoch())
	return nil
}

// runRespawnSupervisor is the -respawn parent: it launches this same
// binary as a worker (minus the -respawn flag, plus an -incarnation
// tag) and relaunches it with a bumped incarnation every time it dies
// to a signal, up to -spares times. A clean exit ends the job; a
// non-signal failure (e.g. a digest mismatch) propagates instead of
// respawning, because restarting cannot fix a wrong answer.
func runRespawnSupervisor(spares int) error {
	if spares < 0 {
		return fmt.Errorf("-spares %d: the respawn budget cannot be negative", spares)
	}
	args := os.Args[1:]
	listen, err := resolveListenAddr(findFlagValue(args, "listen"))
	if err != nil {
		return fmt.Errorf("pinning the worker listen address: %w", err)
	}
	for inc := 0; ; inc++ {
		cmd := exec.Command(os.Args[0], rewriteWorkerArgs(args, listen, inc)...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("launching worker incarnation %d: %w", inc, err)
		}
		fmt.Printf("respawn: worker pid %d running as incarnation %d\n", cmd.Process.Pid, inc)
		err := cmd.Wait()
		if err == nil {
			fmt.Printf("respawn: worker finished cleanly after %d respawn(s)\n", inc)
			return nil
		}
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
				if inc >= spares {
					return fmt.Errorf("worker incarnation %d killed by %v and the -spares budget (%d) is exhausted", inc, ws.Signal(), spares)
				}
				fmt.Printf("respawn: worker pid %d killed by %v; relaunching as incarnation %d (%d spare(s) left)\n",
					cmd.Process.Pid, ws.Signal(), inc+1, spares-inc-1)
				continue
			}
		}
		return fmt.Errorf("worker incarnation %d failed (not a kill, not respawning): %w", inc, err)
	}
}

// resolveListenAddr pins a kernel-assigned port up front: every
// respawned incarnation must rebind the same address, or the survivors'
// redial loop points at a listener that no longer exists.
func resolveListenAddr(listen string) (string, error) {
	if listen == "" || strings.HasPrefix(listen, "unix:") {
		return listen, nil
	}
	_, port, err := net.SplitHostPort(listen)
	if err != nil || port != "0" {
		return listen, nil
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// rewriteWorkerArgs turns the supervisor's own argument list into the
// worker's: -respawn dropped, -listen pinned, -die-round kept only for
// incarnation 0 (the worker dies once; the spare must finish), and the
// incarnation appended so the wire handshake can fence the dead range.
// Both "-flag=value" and "-flag value" spellings are handled.
func rewriteWorkerArgs(args []string, listen string, inc int) []string {
	out := make([]string, 0, len(args)+1)
	skip := false
	for _, a := range args {
		if skip {
			skip = false
			continue
		}
		name, hasValue := splitFlagArg(a)
		switch name {
		case "respawn": // bool: a bare flag never consumes the next token
		case "incarnation":
			skip = !hasValue
		case "die-round":
			if inc > 0 {
				skip = !hasValue
			} else {
				out = append(out, a)
			}
		case "listen":
			if listen != "" {
				out = append(out, "-listen="+listen)
			}
			skip = !hasValue
		default:
			out = append(out, a)
		}
	}
	return append(out, fmt.Sprintf("-incarnation=%d", inc))
}

func splitFlagArg(a string) (name string, hasValue bool) {
	if !strings.HasPrefix(a, "-") {
		return "", false
	}
	s := strings.TrimLeft(a, "-")
	if i := strings.IndexByte(s, '='); i >= 0 {
		return s[:i], true
	}
	return s, false
}

// findFlagValue digs a flag's value out of a raw argument list without
// a flag.FlagSet (the supervisor must not consume the worker's flags).
func findFlagValue(args []string, flagName string) string {
	for i, a := range args {
		name, hasValue := splitFlagArg(a)
		if name != flagName {
			continue
		}
		if hasValue {
			s := strings.TrimLeft(a, "-")
			return s[strings.IndexByte(s, '=')+1:]
		}
		if i+1 < len(args) {
			return args[i+1]
		}
	}
	return ""
}
