package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"pamigo/internal/cnk"
	"pamigo/internal/core"
	"pamigo/internal/fault"
	"pamigo/internal/machine"
	"pamigo/internal/mu"
	"pamigo/internal/torus"
	"pamigo/internal/wire"
)

// The wire shakedown: a bulk-synchronous all-to-all digest workload that
// a partition split across OS processes must finish byte-exact. Each
// round every task ships a deterministic payload to every member and
// folds the FNV digest of what actually arrived into its state, so a
// single flipped bit anywhere on the wire shows up in the final answer.
// The round structure doubles as the barrier: a task enters round r+1
// only after hearing round r from every live member, which bounds how
// far ahead any peer can run to one round.
//
// Every wireCkEvery rounds the job quiesces and checkpoints. When a peer
// process is SIGKILLed mid-run, survivors confirm the death through
// phi-accrual heartbeat silence, fail over with typed errors, restore
// from the last checkpoint, and finish the remaining rounds among
// themselves — still byte-exact against the analytic expectation.
const (
	wireRounds  = 12 // total all-to-all rounds
	wireCkEvery = 4  // checkpoint interval in rounds

	dispContrib = 1 // a round contribution: meta = (gen, round), data = payload
	dispOffer   = 2 // recovery negotiation: meta = (gen, resume round)

	wireJoinTimeout = 30 * time.Second
)

// wireFlags is the validated form of the -listen/-join/-rank-range
// command-line surface.
type wireFlags struct {
	listen    string
	join      []string
	lo, hi    int // hosted task range, half-open
	partition uint64
	dieRound  int
	drop      float64 // wire-level fault storm probabilities
	corrupt   float64
}

// validateWireFlags checks the multi-process flag set up front, so a
// typo fails in milliseconds with a message naming the fix instead of a
// partition that hangs waiting for a peer that can never exist.
func validateWireFlags(dims torus.Dims, ppn int, listen, joinCSV, rankRange string, partition uint64, dieRound int) (wireFlags, error) {
	nTasks := dims.Nodes() * ppn
	wf := wireFlags{listen: listen, partition: partition, dieRound: dieRound, lo: 0, hi: nTasks}
	if joinCSV != "" {
		for _, a := range strings.Split(joinCSV, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return wf, fmt.Errorf("-join %q has an empty address: give a comma-separated list like 127.0.0.1:7000,unix:/tmp/p1.sock", joinCSV)
			}
			wf.join = append(wf.join, a)
		}
	}
	if rankRange != "" {
		lo, hi, ok := parseRankRange(rankRange)
		if !ok {
			return wf, fmt.Errorf(`-rank-range must be "lo:hi" (a half-open task range, e.g. 0:2), got %q`, rankRange)
		}
		if lo < 0 || hi > nTasks {
			return wf, fmt.Errorf("-rank-range %s is outside the partition: %s with -ppn %d has tasks [0,%d)", rankRange, dims, ppn, nTasks)
		}
		if lo >= hi {
			return wf, fmt.Errorf("-rank-range %s is empty: lo must be below hi", rankRange)
		}
		if lo%ppn != 0 || hi%ppn != 0 {
			return wf, fmt.Errorf("-rank-range %s splits a node: with -ppn %d both bounds must be multiples of %d so same-node tasks share a process (the shared-memory path requires it)", rankRange, ppn, ppn)
		}
		wf.lo, wf.hi = lo, hi
	}
	partial := wf.lo != 0 || wf.hi != nTasks
	if partial && listen == "" && len(wf.join) == 0 {
		return wf, fmt.Errorf("-rank-range %d:%d hosts only %d of %d tasks but neither -listen nor -join is set: the rest of the partition would be unreachable (add -listen to accept peers, -join to dial them, or host the full range)", wf.lo, wf.hi, wf.hi-wf.lo, nTasks)
	}
	if dieRound >= 0 {
		if dieRound >= wireRounds {
			return wf, fmt.Errorf("-die-round %d is past the end of the shakedown: rounds run 0..%d", dieRound, wireRounds-1)
		}
		if listen == "" && len(wf.join) == 0 {
			return wf, fmt.Errorf("-die-round needs a multi-process run: add -listen/-join so a survivor exists to recover")
		}
	}
	return wf, nil
}

func parseRankRange(s string) (lo, hi int, ok bool) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, 0, false
	}
	lo, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	hi, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	return lo, hi, err1 == nil && err2 == nil
}

// wireMix is the per-(round,src,dst) tag folded into every signature, so
// a payload replayed under the wrong coordinates cannot verify.
func wireMix(round, src, dst int) uint64 {
	return uint64(round+1)*0x9e3779b97f4a7c15 ^ uint64(src+1)*0xc2b2ae3d27d4eb4f ^ uint64(dst+1)*0x165667b19e3779f9
}

// wirePayload builds the deterministic contribution src sends dst in the
// given round. Sizes vary with the coordinates but stay below the eager
// threshold: cross-process traffic is eager-only (no remote RDMA).
func wirePayload(round, src, dst int) []byte {
	h := wireMix(round, src, dst)
	b := make([]byte, 64+int(h%1931))
	x := h | 1
	for i := range b {
		x = x*6364136223846793005 + 1442695040888963407
		b[i] = byte(x >> 56)
	}
	return b
}

// wireSigBytes digests the payload actually received; wireSig is the
// analytic value for an intact delivery.
func wireSigBytes(round, src, dst int, payload []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range payload {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h ^ wireMix(round, src, dst)
}

func wireSig(round, src, dst int) uint64 {
	return wireSigBytes(round, src, dst, wirePayload(round, src, dst))
}

// memberSeg records which tasks contributed from a given round on. The
// history starts with full membership; each recovery truncates it at the
// negotiated resume round and appends the survivor set, because rolled
// back rounds are re-run by survivors only.
type memberSeg struct {
	from  int
	alive []int
}

func aliveAt(segs []memberSeg, round int) []int {
	cur := segs[0].alive
	for _, s := range segs {
		if s.from <= round {
			cur = s.alive
		}
	}
	return cur
}

func expectedWireDigest(task, rounds int, segs []memberSeg) uint64 {
	var dg uint64
	for r := 0; r < rounds; r++ {
		for _, src := range aliveAt(segs, r) {
			dg += wireSig(r, src, task)
		}
	}
	return dg
}

// The application checkpoint blob: the round to resume from, then the
// running digest of every hosted task.
func encodeWireBlob(resume int, digests map[int]uint64) []byte {
	tasks := make([]int, 0, len(digests))
	for t := range digests {
		tasks = append(tasks, t)
	}
	sort.Ints(tasks)
	blob := make([]byte, 8+len(tasks)*12)
	binary.LittleEndian.PutUint32(blob, uint32(resume))
	binary.LittleEndian.PutUint32(blob[4:], uint32(len(tasks)))
	for i, t := range tasks {
		binary.LittleEndian.PutUint32(blob[8+i*12:], uint32(t))
		binary.LittleEndian.PutUint64(blob[8+i*12+4:], digests[t])
	}
	return blob
}

func decodeWireBlob(blob []byte) (resume int, digests map[int]uint64, err error) {
	if len(blob) < 8 {
		return 0, nil, fmt.Errorf("malformed wire checkpoint blob of %d bytes", len(blob))
	}
	resume = int(binary.LittleEndian.Uint32(blob))
	n := int(binary.LittleEndian.Uint32(blob[4:]))
	if len(blob) != 8+n*12 {
		return 0, nil, fmt.Errorf("wire checkpoint blob declares %d tasks in %d bytes", n, len(blob))
	}
	digests = make(map[int]uint64, n)
	for i := 0; i < n; i++ {
		t := int(binary.LittleEndian.Uint32(blob[8+i*12:]))
		digests[t] = binary.LittleEndian.Uint64(blob[8+i*12+4:])
	}
	return resume, digests, nil
}

// wireSaved is one retained checkpoint. The job keeps the last two:
// survivors negotiate the oldest resume round any of them holds, and the
// round-barrier structure bounds the spread to one checkpoint period.
type wireSaved struct {
	resume int
	enc    []byte
}

// wireJob is the per-process state that outlives machine generations:
// the flag set, the membership history, and the retained checkpoints.
// During a run only the leader task's goroutine touches saved/segs, and
// machine.Run's join publishes them to the driver loop.
type wireJob struct {
	cfg     machine.Config
	wf      wireFlags
	verbose bool
	nTasks  int
	rounds  int

	segs  []memberSeg
	saved []wireSaved
}

func (job *wireJob) store(resume int, enc []byte) {
	job.saved = append(job.saved, wireSaved{resume: resume, enc: enc})
	if len(job.saved) > 2 {
		job.saved = job.saved[len(job.saved)-2:]
	}
}

func (job *wireJob) latestResume() int { return job.saved[len(job.saved)-1].resume }

func (job *wireJob) truncateSegs(from int, alive []int) {
	keep := job.segs[:0]
	for _, s := range job.segs {
		if s.from < from {
			keep = append(keep, s)
		}
	}
	job.segs = append(keep, memberSeg{from: from, alive: append([]int(nil), alive...)})
}

// wireGen is one machine generation of the shakedown: a boot (fresh or
// checkpoint-restored), a negotiation when recovering, and a run of
// rounds that either completes or is interrupted by a confirmed death.
type wireGen struct {
	job   *wireJob
	m     *machine.Machine
	gen   int   // generation tag carried in every message
	base  int64 // membership epoch at generation start; a move aborts
	die   int   // SIGKILL self at this round (-1 = never)
	offer int   // resume round this process brings to the negotiation
	bar   *ctrlBarrier
	alive []int // members at generation start

	ckOK atomic.Bool

	mu      sync.Mutex
	digests map[int]uint64 // per hosted task, updated at checkpoints and at the end
	offers  map[[2]int]int // (gen, peer leader task) -> offered resume round
	resume  int            // negotiated resume round
	seedDg  map[int]uint64 // digests restored from the chosen checkpoint
	failure error          // first typed failure any task observed
}

func newWireGen(job *wireJob, m *machine.Machine, gen, die int) *wireGen {
	g := &wireGen{
		job: job, m: m, gen: gen, base: m.Epoch(), die: die,
		offer:   job.latestResume(),
		bar:     newCtrlBarrierAt(m, job.wf.hi-job.wf.lo, m.Epoch()),
		digests: make(map[int]uint64),
		offers:  make(map[[2]int]int),
	}
	for t := 0; t < job.nTasks; t++ {
		if m.Alive(t) {
			g.alive = append(g.alive, t)
		}
	}
	return g
}

func (g *wireGen) seed() int64      { return g.job.cfg.FaultSeed }
func (g *wireGen) epochMoved() bool { return g.m.Epoch() != g.base }

func (g *wireGen) noteFailure(err error) {
	g.mu.Lock()
	if g.failure == nil {
		g.failure = err
	}
	g.mu.Unlock()
}

func (g *wireGen) typedFailure() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.failure
}

// deathErr is the typed verdict a task returns when the membership
// epoch moves under it.
func (g *wireGen) deathErr(where string) error {
	err := g.typedFailure()
	if err == nil {
		err = mu.ErrPeerDead
	}
	return fmt.Errorf("membership moved during %s (epoch %d -> %d): %w", where, g.base, g.m.Epoch(), err)
}

// wireTypedErr reports whether a failure is one of the typed outcomes a
// peer death legitimately produces. Anything else is a bug.
func wireTypedErr(err error) bool {
	return errors.Is(err, mu.ErrPeerDead) || errors.Is(err, mu.ErrEpochChanged)
}

// wireBusyErr reports a transient refusal that advance-and-retry clears.
// ErrNoSuchContext is transient at round 0: a same-process peer task has
// not finished booting its context yet (the wire transport absorbs this
// race internally for cross-process destinations).
func wireBusyErr(err error) bool {
	return errors.Is(err, core.ErrThrottled) ||
		errors.Is(err, mu.ErrBackpressure) ||
		errors.Is(err, mu.ErrNoSuchContext)
}

// peerLeaders returns the leader task of every live peer process.
func (g *wireGen) peerLeaders() []int {
	w := g.m.Wire()
	if w == nil {
		return nil
	}
	var out []int
	for _, pi := range w.Peers() {
		if !pi.Dead {
			out = append(out, pi.TaskLo)
		}
	}
	return out
}

func (g *wireGen) run() error {
	var errMu sync.Mutex
	var retErr error
	g.m.Run(func(p *cnk.Process) {
		if err := g.runTask(p); err != nil {
			errMu.Lock()
			if retErr == nil {
				retErr = err
			}
			errMu.Unlock()
		}
	})
	return retErr
}

func (g *wireGen) runTask(p *cnk.Process) error {
	task := p.TaskRank()
	leader := task == g.job.wf.lo
	cl, err := core.NewClient(g.m, p, "wiredemo")
	if err != nil {
		return err
	}
	ctxs, err := cl.CreateContexts(1)
	if err != nil {
		return err
	}
	ctx := ctxs[0]

	// The round ledger: what each member contributed, keyed by generation
	// so rolled-back traffic can never be double counted. Only this
	// goroutine advances the context, so the handlers need no lock here.
	type ckey struct{ gen, round, src int }
	sigs := make(map[ckey]uint64)
	ctx.RegisterDispatch(dispContrib, func(_ *core.Context, d *core.Delivery) {
		if len(d.Meta) != 8 || d.IsRendezvous() {
			return
		}
		gen := int(binary.LittleEndian.Uint32(d.Meta))
		round := int(binary.LittleEndian.Uint32(d.Meta[4:]))
		sigs[ckey{gen, round, d.Origin.Task}] = wireSigBytes(round, d.Origin.Task, task, d.Data)
	})
	offerMeta := make([]byte, 8)
	binary.LittleEndian.PutUint32(offerMeta, uint32(g.gen))
	binary.LittleEndian.PutUint32(offerMeta[4:], uint32(g.offer))
	ctx.RegisterDispatch(dispOffer, func(_ *core.Context, d *core.Delivery) {
		if len(d.Meta) != 8 {
			return
		}
		gen := int(binary.LittleEndian.Uint32(d.Meta))
		resume := int(binary.LittleEndian.Uint32(d.Meta[4:]))
		g.mu.Lock()
		_, seen := g.offers[[2]int{gen, d.Origin.Task}]
		if !seen {
			g.offers[[2]int{gen, d.Origin.Task}] = resume
		}
		g.mu.Unlock()
		if leader && gen == g.gen && !seen {
			// Echo our own offer back: the peer rebooted after us, so our
			// proactive offers may have landed in its previous incarnation.
			_ = ctx.SendImmediate(core.Endpoint{Task: d.Origin.Task}, dispOffer, offerMeta, nil)
		}
	})

	// Recovery negotiation: survivors agree to resume from the oldest
	// checkpoint any of them holds, since a process may have checkpointed
	// one period further than a peer it now needs to re-run with.
	resume, dg := 0, uint64(0)
	if g.gen > 0 {
		if leader {
			g.mu.Lock()
			g.offers[[2]int{g.gen, task}] = g.offer
			g.mu.Unlock()
			for step := int64(1); ; step++ {
				if g.epochMoved() {
					return g.deathErr("recovery negotiation")
				}
				done := true
				for _, pl := range g.peerLeaders() {
					g.mu.Lock()
					_, ok := g.offers[[2]int{g.gen, pl}]
					g.mu.Unlock()
					if ok {
						continue
					}
					done = false
					if err := ctx.SendImmediate(core.Endpoint{Task: pl}, dispOffer, offerMeta, nil); err != nil &&
						!wireTypedErr(err) && !wireBusyErr(err) {
						return fmt.Errorf("task %d: resume offer to %d: %w", task, pl, err)
					}
				}
				if done {
					break
				}
				ctx.Advance(64)
				time.Sleep(fault.Jitter(g.seed(), 0x0f<<56|step, 200*time.Microsecond))
			}
			g.mu.Lock()
			min := g.offer
			for k, v := range g.offers {
				if k[0] == g.gen && v < min {
					min = v
				}
			}
			g.resume = min
			g.mu.Unlock()
			var chosen *wireSaved
			for i := range g.job.saved {
				if g.job.saved[i].resume == min {
					chosen = &g.job.saved[i]
				}
			}
			if chosen == nil {
				return fmt.Errorf("no retained checkpoint resumes at round %d (have %v)", min, savedRounds(g.job.saved))
			}
			ck, err := machine.DecodeCheckpoint(chosen.enc)
			if err != nil {
				return err
			}
			_, seedDg, err := decodeWireBlob(ck.Blob("app"))
			if err != nil {
				return err
			}
			g.mu.Lock()
			g.seedDg = seedDg
			g.mu.Unlock()
			g.job.truncateSegs(min, g.alive)
			fmt.Printf("recovered from the round-%d checkpoint: resuming rounds %d..%d among %d member task(s)\n",
				min, min, g.job.rounds-1, len(g.alive))
		}
		if err := g.bar.Await(); err != nil {
			return fmt.Errorf("task %d at the recovery barrier: %w", task, err)
		}
		g.mu.Lock()
		resume, dg = g.resume, g.seedDg[task]
		g.mu.Unlock()
	}

	for r := resume; r < g.job.rounds; r++ {
		if g.die >= 0 && r == g.die {
			fmt.Printf("task %d reached round %d: SIGKILL self (pid %d)\n", task, r, os.Getpid())
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // the signal is not survivable; never fall through
		}
		meta := make([]byte, 8)
		binary.LittleEndian.PutUint32(meta, uint32(g.gen))
		binary.LittleEndian.PutUint32(meta[4:], uint32(r))
		for _, dst := range g.alive {
			if dst == task {
				continue
			}
			payload := wirePayload(r, task, dst)
			for step := int64(1); ; step++ {
				err := ctx.Send(core.SendParams{
					Dest: core.Endpoint{Task: dst}, Dispatch: dispContrib,
					Meta: meta, Data: payload, Mode: core.ModeEager,
				})
				if err == nil {
					break
				}
				if wireTypedErr(err) {
					// The member died under us: its contribution is no longer
					// required, and the epoch check below aborts the round.
					g.noteFailure(err)
					break
				}
				if !wireBusyErr(err) {
					return fmt.Errorf("task %d round %d -> task %d: %w", task, r, dst, err)
				}
				ctx.Advance(64)
				time.Sleep(fault.Jitter(g.seed(), int64(r)<<40|int64(dst)<<20|step, 100*time.Microsecond))
			}
		}
		sigs[ckey{g.gen, r, task}] = wireSig(r, task, task)
		ctx.AdvanceUntil(func() bool {
			if g.epochMoved() {
				return true
			}
			for _, src := range g.alive {
				if _, ok := sigs[ckey{g.gen, r, src}]; !ok {
					return false
				}
			}
			return true
		})
		if g.epochMoved() {
			return g.deathErr(fmt.Sprintf("round %d", r))
		}
		for _, src := range g.alive {
			dg += sigs[ckey{g.gen, r, src}]
			delete(sigs, ckey{g.gen, r, src})
		}
		if g.job.verbose {
			fmt.Printf("task %d completed round %d\n", task, r)
		}
		if (r+1)%wireCkEvery == 0 && r+1 < g.job.rounds {
			if err := g.checkpointRound(ctx, task, leader, dg, r+1); err != nil {
				return err
			}
		}
	}
	// Do not exit with frames in flight: a process that tears its
	// transport down before the final round is acknowledged loses the
	// slower peer's last contribution and turns a clean finish into a
	// spurious death. Quiesced skips confirmed-dead peers, and a real
	// death mid-wait discards that peer's window, so this terminates.
	if w := g.m.Wire(); w != nil {
		for step := int64(1); w.Quiesced() != nil; step++ {
			ctx.Advance(64)
			time.Sleep(fault.Jitter(g.m.Config().FaultSeed, int64(task)<<40|0x1d<<32|step, 100*time.Microsecond))
		}
	}
	g.mu.Lock()
	g.digests[task] = dg
	g.mu.Unlock()
	return nil
}

// checkpointRound quiesces the process's tasks and snapshots the machine
// plus the running digests. The round barrier guarantees every member
// has stopped initiating; stragglers still land between the drain and
// the capture, in which case Checkpoint refuses (the machine is not
// quiescent, or the wire still holds unacknowledged frames) and the
// round drains again.
func (g *wireGen) checkpointRound(ctx *core.Context, task int, leader bool, dg uint64, resume int) error {
	g.mu.Lock()
	g.digests[task] = dg
	g.mu.Unlock()
	for step := int64(1); ; step++ {
		if err := g.bar.Await(); err != nil {
			return fmt.Errorf("task %d at the checkpoint barrier: %w", task, err)
		}
		if step > 1 {
			// A refusal normally means an ack is still in flight from the
			// peer; settle instead of hammering the quiescence check (a
			// tight retry spin can starve this process's own heartbeat
			// writer long enough to look dead to the other side).
			ctx.Advance(64)
			time.Sleep(fault.Jitter(g.m.Config().FaultSeed, int64(task)<<40|0x2d<<32|step, 200*time.Microsecond))
		}
		ctx.Drain()
		if err := g.bar.Await(); err != nil {
			return fmt.Errorf("task %d at the checkpoint barrier: %w", task, err)
		}
		if leader {
			g.ckOK.Store(false)
			g.mu.Lock()
			snap := make(map[int]uint64, len(g.digests))
			for t, v := range g.digests {
				snap[t] = v
			}
			g.mu.Unlock()
			ck, err := g.m.Checkpoint(map[string][]byte{"app": encodeWireBlob(resume, snap)})
			if err == nil {
				var enc []byte
				if enc, err = ck.Encode(); err == nil {
					g.job.store(resume, enc)
					g.ckOK.Store(true)
					if g.job.verbose {
						fmt.Printf("checkpointed at round %d (%d bytes)\n", resume, len(enc))
					}
				}
			}
		}
		if err := g.bar.Await(); err != nil {
			return fmt.Errorf("task %d at the checkpoint barrier: %w", task, err)
		}
		if g.ckOK.Load() {
			return nil
		}
	}
}

func savedRounds(saved []wireSaved) []int {
	out := make([]int, len(saved))
	for i, s := range saved {
		out[i] = s.resume
	}
	return out
}

// runWireShakedown is the -listen/-join/-rank-range driver: boot (or
// restore) a machine generation, assemble the wire partition, run the
// digest rounds, and on a confirmed peer death recover from the last
// checkpoint and go again — until the shakedown completes byte-exact.
func runWireShakedown(cfg machine.Config, wf wireFlags, verbose bool) error {
	nTasks := cfg.Dims.Nodes() * cfg.PPN
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 2 * time.Millisecond
	}
	if cfg.PhiThreshold == 0 {
		cfg.PhiThreshold = 10
	}
	job := &wireJob{cfg: cfg, wf: wf, verbose: verbose, nTasks: nTasks, rounds: wireRounds}
	all := make([]int, nTasks)
	for i := range all {
		all[i] = i
	}
	job.segs = []memberSeg{{from: 0, alive: all}}

	dead := make(map[torus.Rank]bool)
	dieRound := wf.dieRound
	for genNum := 0; ; {
		c := job.cfg
		c.HostedLo, c.HostedHi = wf.lo, wf.hi
		if wf.listen != "" || len(wf.join) > 0 {
			c.Wire = &wire.Options{
				Listen: wf.listen, Join: wf.join, Partition: wf.partition,
				Seed: c.FaultSeed, DropProb: wf.drop, CorruptProb: wf.corrupt,
			}
		}
		var m *machine.Machine
		var err error
		if genNum == 0 {
			m, err = machine.New(c)
		} else {
			// Checkpoint-restore: the snapshot pins the shape, the
			// transports start clean (nothing was in flight at capture).
			var ck *machine.Checkpoint
			if ck, err = machine.DecodeCheckpoint(job.saved[len(job.saved)-1].enc); err == nil {
				m, err = machine.RestoreWith(ck, c)
			}
		}
		if err != nil {
			return err
		}
		for r := range dead {
			m.Health().DeclareDead(r) // hmon always exists in wire mode
		}
		if w := m.Wire(); w != nil {
			if wf.listen != "" {
				// Pin the kernel-assigned port: a recovery reboot must
				// rebind the same address or the other survivors' join
				// lists point at a listener that no longer exists.
				wf.listen = w.Addr()
				fmt.Printf("wire listening on %s (hosting tasks [%d,%d) of %d)\n", w.Addr(), wf.lo, wf.hi, nTasks)
			}
			if err := m.WaitWire(wireJoinTimeout); err != nil {
				m.Shutdown()
				return fmt.Errorf("assembling the wire partition: %w", err)
			}
			fmt.Printf("wire partition assembled: %d peer process(es), %d member task(s), epoch %d\n",
				len(w.Peers()), countAliveTasks(m, nTasks), m.Epoch())
		}
		if genNum == 0 {
			// Base checkpoint: a freshly assembled partition is trivially
			// quiescent, and a death before the first periodic snapshot
			// then restarts from round 0 instead of failing the job.
			zero := make(map[int]uint64, wf.hi-wf.lo)
			for t := wf.lo; t < wf.hi; t++ {
				zero[t] = 0
			}
			ck, err := m.Checkpoint(map[string][]byte{"app": encodeWireBlob(0, zero)})
			if err != nil {
				m.Shutdown()
				return fmt.Errorf("base checkpoint: %w", err)
			}
			enc, err := ck.Encode()
			if err != nil {
				m.Shutdown()
				return err
			}
			job.store(0, enc)
		}

		g := newWireGen(job, m, genNum, dieRound)
		start := time.Now()
		runErr := g.run()
		var newDead []torus.Rank
		if h := m.Health(); h != nil {
			newDead = h.DeadNodes()
		}
		epochNow := m.Epoch()
		m.Shutdown()

		if runErr == nil {
			return finishWireShakedown(job, g, time.Since(start))
		}
		if !wireTypedErr(runErr) {
			return runErr
		}
		for _, r := range newDead {
			dead[r] = true
		}
		typed := g.typedFailure()
		if typed == nil {
			typed = mu.ErrPeerDead
		}
		fmt.Printf("peer death confirmed: node(s) %v dead at epoch %d after %v; survivors failed over with typed errors (%v); recovering from the last checkpoint\n",
			newDead, epochNow, time.Since(start).Round(time.Millisecond), typed)
		genNum = int(epochNow)
		dieRound = -1
	}
}

func countAliveTasks(m *machine.Machine, nTasks int) int {
	n := 0
	for t := 0; t < nTasks; t++ {
		if m.Alive(t) {
			n++
		}
	}
	return n
}

func finishWireShakedown(job *wireJob, g *wireGen, elapsed time.Duration) error {
	tasks := make([]int, 0, len(g.digests))
	for t := range g.digests {
		tasks = append(tasks, t)
	}
	sort.Ints(tasks)
	for _, t := range tasks {
		want := expectedWireDigest(t, job.rounds, job.segs)
		if g.digests[t] != want {
			return fmt.Errorf("task %d digest %016x, want %016x — NOT byte-exact", t, g.digests[t], want)
		}
		fmt.Printf("task %d digest %016x\n", t, g.digests[t])
	}
	fmt.Printf("wire shakedown passed in %v: %d rounds, %d generation(s), %d hosted task(s), digests byte-exact\n",
		elapsed.Round(time.Millisecond), job.rounds, g.gen+1, len(tasks))
	return nil
}
