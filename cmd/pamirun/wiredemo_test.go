package main

import (
	"strings"
	"testing"

	"pamigo/internal/torus"
)

var demoDims = torus.Dims{2, 1, 1, 1, 1}

func TestValidateWireFlagsAccepts(t *testing.T) {
	wf, err := validateWireFlags(demoDims, 2, "127.0.0.1:0", "", "0:2", 7, -1)
	if err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	if wf.lo != 0 || wf.hi != 2 || wf.partition != 7 {
		t.Fatalf("parsed flags wrong: %+v", wf)
	}
	// No range at all hosts the full partition.
	wf, err = validateWireFlags(demoDims, 2, "", "", "", 1, -1)
	if err != nil {
		t.Fatalf("full-range default rejected: %v", err)
	}
	if wf.lo != 0 || wf.hi != 4 {
		t.Fatalf("default range [%d,%d), want [0,4)", wf.lo, wf.hi)
	}
	// Join lists split on commas and trim spaces.
	wf, err = validateWireFlags(demoDims, 1, "", "127.0.0.1:7000, unix:/tmp/p1.sock", "1:2", 1, -1)
	if err != nil {
		t.Fatalf("join list rejected: %v", err)
	}
	if len(wf.join) != 2 || wf.join[1] != "unix:/tmp/p1.sock" {
		t.Fatalf("join list parsed wrong: %v", wf.join)
	}
}

// Every rejection must say what is wrong AND what to do about it.
func TestValidateWireFlagsRejects(t *testing.T) {
	cases := []struct {
		name      string
		ppn       int
		listen    string
		join      string
		rankRange string
		die       int
		want      string
	}{
		{"bad format", 1, "x:0", "", "0-2", -1, `"lo:hi"`},
		{"not numbers", 1, "x:0", "", "a:b", -1, `"lo:hi"`},
		{"out of bounds", 1, "x:0", "", "0:5", -1, "outside the partition"},
		{"empty range", 1, "x:0", "", "1:1", -1, "lo must be below hi"},
		{"splits a node", 2, "x:0", "", "1:4", -1, "splits a node"},
		{"unreachable rest", 1, "", "", "0:1", -1, "-listen"},
		{"empty join element", 1, "", "a:1,,b:2", "", -1, "empty address"},
		{"die past end", 1, "x:0", "", "", wireRounds, "past the end"},
		{"die single process", 1, "", "", "", 3, "multi-process"},
	}
	for _, tc := range cases {
		_, err := validateWireFlags(demoDims, tc.ppn, tc.listen, tc.join, tc.rankRange, 1, tc.die)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// The digest machinery must be deterministic and coordinate-bound, or
// byte-exact comparison across process layouts means nothing.
func TestWireDigestDeterminism(t *testing.T) {
	if wireSig(3, 1, 2) != wireSigBytes(3, 1, 2, wirePayload(3, 1, 2)) {
		t.Fatal("analytic signature disagrees with the received-bytes path")
	}
	if wireSig(3, 1, 2) == wireSig(3, 2, 1) {
		t.Fatal("signature ignores direction")
	}
	p := wirePayload(5, 0, 1)
	p[len(p)/2] ^= 0x40
	if wireSigBytes(5, 0, 1, p) == wireSig(5, 0, 1) {
		t.Fatal("a flipped bit went unnoticed")
	}
}

func TestWireBlobRoundTrip(t *testing.T) {
	in := map[int]uint64{0: 7, 3: 0xdeadbeefcafef00d}
	resume, out, err := decodeWireBlob(encodeWireBlob(8, in))
	if err != nil || resume != 8 || len(out) != 2 || out[3] != in[3] || out[0] != 7 {
		t.Fatalf("round trip: resume=%d out=%v err=%v", resume, out, err)
	}
	if _, _, err := decodeWireBlob([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated blob accepted")
	}
}

// Membership segments: a recovery truncates history at the resume round
// and replays later rounds with survivors only.
func TestExpectedDigestSegments(t *testing.T) {
	full := []int{0, 1}
	segs := []memberSeg{{from: 0, alive: full}}
	base := expectedWireDigest(0, 8, segs)
	segs = []memberSeg{{from: 0, alive: full}, {from: 4, alive: []int{0}}}
	reduced := expectedWireDigest(0, 8, segs)
	if base == reduced {
		t.Fatal("dropping a member changed nothing")
	}
	var want uint64
	for r := 0; r < 8; r++ {
		want += wireSig(r, 0, 0)
		if r < 4 {
			want += wireSig(r, 1, 0)
		}
	}
	if reduced != want {
		t.Fatalf("segmented digest %016x, want %016x", reduced, want)
	}
}
