// Command pamirun boots a functional machine, runs a short communication
// shakedown on it — point-to-point ping-pong, the four collectives, a
// rectangle broadcast — and prints the fabric statistics, so you can see
// the simulated BG/Q moving real packets.
//
// Usage:
//
//	pamirun -dims 2x2x2x1x1 -ppn 2
//	pamirun -dims 2x2x1x1x1 -faults "drop=0.05,corrupt=0.02,dup=0.01" -fault-seed 7 -deadline 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"pamigo/internal/cnk"
	"pamigo/internal/collnet"
	"pamigo/internal/fault"
	"pamigo/internal/machine"
	"pamigo/internal/torus"
	"pamigo/internal/watchdog"
	"pamigo/mpi"
	"pamigo/pami"
)

func parseDims(s string) (torus.Dims, error) {
	parts := strings.Split(s, "x")
	var d torus.Dims
	if len(parts) != torus.NumDims {
		return d, fmt.Errorf("want 5 dimensions AxBxCxDxE, got %q", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return d, err
		}
		d[i] = v
	}
	return d, d.Validate()
}

func main() {
	dimsFlag := flag.String("dims", "2x2x2x1x1", "torus shape AxBxCxDxE")
	ppn := flag.Int("ppn", 2, "processes per node")
	verbose := flag.Bool("v", false, "print per-rank progress")
	stats := flag.Bool("stats", false, "print the machine's telemetry totals after the shakedown")
	faults := flag.String("faults", "", `fault plan, e.g. "drop=0.05,corrupt=0.02,dup=0.01,linkdown=0:A+@500" (empty = off)`)
	faultSeed := flag.Int64("fault-seed", 1, "seed for deterministic fault decisions")
	deadline := flag.Duration("deadline", 0, "abort with a goroutine dump if the run exceeds this duration (0 = off)")
	hangDump := flag.Bool("hang-dump", false, "install a SIGQUIT handler that prints the stall-sentinel wait-site table plus a goroutine dump and keeps running")
	stallDeadline := flag.Duration("stall-deadline", 0, "arm the partition stall sentinel: any escalatable wait parked longer than this is aborted with a typed cause (0 = observe only)")
	listen := flag.String("listen", "", "wire listen address (host:port or unix:/path) so other processes of the partition can join")
	join := flag.String("join", "", "comma-separated wire addresses of already-started partition processes to join")
	rankRange := flag.String("rank-range", "", `task range "lo:hi" this process hosts (half-open, bounds multiples of -ppn); default: all`)
	partitionID := flag.Uint64("partition", 1, "partition ID every process of the job must share")
	dieRound := flag.Int("die-round", -1, "SIGKILL this process when it reaches the given wire-shakedown round (chaos testing; -1 = never)")
	wiredemo := flag.Bool("wiredemo", false, "run the wire shakedown workload even single-process (reference digests for byte-exact comparison)")
	recoverMode := flag.String("recover", "", `"auto" turns on self-healing: buddy-replicated in-memory checkpoints with automatic online recovery`)
	buddyInterval := flag.Int("buddy-interval", 4, "rounds between buddy checkpoints in the -recover=auto demo")
	spares := flag.Int("spares", 4, "respawn budget: how many times -respawn relaunches a killed worker")
	respawn := flag.Bool("respawn", false, "run as the respawn supervisor: launch this command as a worker and relaunch it with a bumped incarnation when a signal kills it")
	incarnation := flag.Uint("incarnation", 0, "worker incarnation tag, bumped by the respawn supervisor on every relaunch (internal)")
	flag.Parse()

	stop := watchdog.Start(*deadline, "pamirun shakedown")
	defer stop()
	if *hangDump {
		watchdog.InstallHangDump("pamirun")
	}

	dims, err := parseDims(*dimsFlag)
	if err != nil {
		log.Fatalf("pamirun: -dims %q: %v (want AxBxCxDxE with every extent >= 1, e.g. 2x2x2x1x1)", *dimsFlag, err)
	}
	if !cnk.ValidPPN(*ppn) {
		log.Fatalf("pamirun: -ppn %d is not a valid BG/Q process count: use a power of two between 1 and 64", *ppn)
	}
	cfg := machine.Config{Dims: dims, PPN: *ppn, TrackHops: true, FaultSeed: *faultSeed, StallDeadline: *stallDeadline}
	if *faults != "" {
		plan, err := fault.ParsePlan(*faults)
		if err != nil {
			log.Fatalf("pamirun: %v", err)
		}
		if err := plan.Validate(dims); err != nil {
			log.Fatalf("pamirun: %v", err)
		}
		cfg.Faults = &plan
	}
	if *recoverMode != "" {
		if *recoverMode != "auto" {
			log.Fatalf(`pamirun: -recover %q: the only supported mode is "auto"`, *recoverMode)
		}
		if *buddyInterval < 1 {
			log.Fatalf("pamirun: -buddy-interval %d: the checkpoint interval must be at least 1 round", *buddyInterval)
		}
		if *respawn {
			// Parent: supervise a worker child, relaunching on kills.
			if err := runRespawnSupervisor(*spares); err != nil {
				log.Fatalf("pamirun: respawn supervisor: %v", err)
			}
			return
		}
		if *listen != "" || *join != "" {
			wf, err := validateWireFlags(dims, *ppn, *listen, *join, *rankRange, *partitionID, *dieRound)
			if err != nil {
				log.Fatalf("pamirun: %v", err)
			}
			if cfg.Faults != nil {
				wf.drop, wf.corrupt = cfg.Faults.Drop, cfg.Faults.Corrupt
				cfg.Faults = nil
				fmt.Printf("wire fault storm armed: drop=%g corrupt=%g (seed %d)\n", wf.drop, wf.corrupt, *faultSeed)
			}
			if err := runWireRecover(cfg, wf, *incarnation, *buddyInterval, *verbose); err != nil {
				log.Fatalf("pamirun: wire self-heal: %v", err)
			}
			return
		}
		if err := runRecoverDemo(cfg, *buddyInterval, *verbose); err != nil {
			log.Fatalf("pamirun: self-heal: %v", err)
		}
		return
	}
	if *listen != "" || *join != "" || *rankRange != "" || *wiredemo || *dieRound >= 0 {
		wf, err := validateWireFlags(dims, *ppn, *listen, *join, *rankRange, *partitionID, *dieRound)
		if err != nil {
			log.Fatalf("pamirun: %v", err)
		}
		if cfg.Faults != nil {
			// In wire mode the fault plan's drop/corrupt rates drive the
			// wire-level storm (cut connections, flipped bytes); the torus
			// injector stays off — the inter-process link is the fabric
			// under test.
			wf.drop, wf.corrupt = cfg.Faults.Drop, cfg.Faults.Corrupt
			cfg.Faults = nil
			fmt.Printf("wire fault storm armed: drop=%g corrupt=%g (seed %d)\n", wf.drop, wf.corrupt, *faultSeed)
		}
		if err := runWireShakedown(cfg, wf, *verbose); err != nil {
			log.Fatalf("pamirun: wire shakedown: %v", err)
		}
		return
	}
	if cfg.Faults != nil && cfg.Faults.HasNodeFaults() {
		// Node faults run the crash-recovery demo instead of the MPI
		// shakedown: the MPI layer is deliberately not fault-aware, the
		// core layer is (see README, "Failure model").
		fmt.Printf("node-fault plan armed: %s (seed %d) — running crash-recovery demo\n",
			cfg.Faults, *faultSeed)
		if err := runCrashRecovery(cfg, *verbose); err != nil {
			log.Fatalf("pamirun: crash recovery: %v", err)
		}
		return
	}
	m, err := pami.NewMachine(cfg)
	if err != nil {
		log.Fatalf("pamirun: %v", err)
	}
	fmt.Printf("booted %s torus, %d nodes, %d processes (PPN=%d)\n",
		dims, m.Nodes(), m.Tasks(), *ppn)
	if cfg.Faults != nil {
		fmt.Printf("fault injection armed: %s (seed %d)\n", cfg.Faults, *faultSeed)
	}

	start := time.Now()
	m.Run(func(p *pami.Process) {
		w, err := mpi.Init(m, p, mpi.Options{})
		if err != nil {
			log.Fatalf("rank %d: %v", p.TaskRank(), err)
		}
		defer w.Finalize()
		cw := w.CommWorld()

		// Ping-pong around a ring.
		next := (w.Rank() + 1) % w.Size()
		prev := (w.Rank() - 1 + w.Size()) % w.Size()
		out := []byte(fmt.Sprintf("hop from %d", w.Rank()))
		in := make([]byte, 32)
		if _, err := cw.SendRecv(out, next, 1, in[:len(out)], prev, 1); err != nil {
			log.Fatalf("rank %d sendrecv: %v", w.Rank(), err)
		}
		if *verbose {
			fmt.Printf("rank %2d received %q\n", w.Rank(), strings.TrimRight(string(in), "\x00"))
		}
		cw.Barrier()

		// Allreduce a double sum on the collective network.
		sum, err := cw.AllreduceFloat64([]float64{float64(w.Rank())}, collnet.OpAdd)
		if err != nil {
			log.Fatalf("rank %d allreduce: %v", w.Rank(), err)
		}
		want := float64(w.Size()*(w.Size()-1)) / 2
		if sum[0] != want {
			log.Fatalf("rank %d: allreduce sum %v, want %v", w.Rank(), sum[0], want)
		}

		// Broadcast 64KB from rank 0 over the classroute.
		buf := make([]byte, 64<<10)
		if w.Rank() == 0 {
			for i := range buf {
				buf[i] = byte(i)
			}
		}
		if err := cw.Bcast(buf, 0); err != nil {
			log.Fatalf("rank %d bcast: %v", w.Rank(), err)
		}

		// Rectangle broadcast at one process per node.
		if *ppn == 1 {
			if err := cw.RectBcast(buf, 0); err != nil {
				log.Fatalf("rank %d rectbcast: %v", w.Rank(), err)
			}
		}
		cw.Barrier()
	})
	elapsed := time.Since(start)

	s := m.Fabric().Snapshot()
	fmt.Printf("shakedown passed in %v\n", elapsed)
	fmt.Printf("torus traffic: %d packets, %d bytes, %d hops (%.2f hops/packet)\n",
		s.Packets, s.Bytes, s.Hops, float64(s.Hops)/float64(max64(s.Packets, 1)))
	fmt.Printf("operations: %d memory-FIFO sends, %d RDMA puts, %d remote gets\n",
		s.MemFIFOSends, s.Puts, s.RemoteGets)
	if cfg.Faults != nil {
		snap := m.Telemetry().Snapshot()
		get := func(name string) int64 {
			v, _ := snap.Counter("mu.reliable." + name)
			return v
		}
		downs, _ := snap.Counter("collnet.links_down")
		rebuilds, _ := snap.Counter("collnet.classroute_rebuilds")
		fmt.Printf("reliability: %d retransmits, %d corrupt drops, %d dup drops, %d acks (%d dropped), %d nacks\n",
			get("retransmits"), get("corrupt_drops"), get("dup_drops"),
			get("acks_sent"), get("acks_dropped"), get("nacks_sent"))
		fmt.Printf("faults: %d drops, %d delays, %d stall drops; %d links down, %d classroute rebuilds, %d reroutes\n",
			get("drops_injected"), get("delays_injected"), get("stall_drops"),
			downs, rebuilds, get("reroutes"))
	}
	m.Shutdown()
	if *stats {
		fmt.Println()
		fmt.Println("telemetry totals (full tree: m.Telemetry().Snapshot().JSON()):")
		fmt.Print(m.Telemetry().Snapshot().RenderTotals())
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
