// Command paperbench regenerates every table and figure of the paper's
// evaluation (Kumar et al., "PAMI: A Parallel Active Message Interface
// for the Blue Gene/Q Supercomputer", IPDPS 2012) from the calibrated
// performance model, printing the same rows and series the paper reports
// alongside the paper's quoted values.
//
// Usage:
//
//	paperbench -exp all
//	paperbench -exp table3
//	paperbench -exp fig8
//
// The model runs at full scale (2048 nodes); for wall-clock measurements
// of the functional Go runtime use `go test -bench=.` at the repository
// root, or cmd/msgrate and cmd/pamirun.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"pamigo/internal/bench"
	"pamigo/internal/collnet"
	"pamigo/internal/fault"
	"pamigo/internal/machine"
	"pamigo/internal/model"
	"pamigo/internal/netsim"
	"pamigo/internal/profiles"
	"pamigo/internal/sim/des"
	"pamigo/internal/sim/warp"
	"pamigo/internal/torus"
	"pamigo/internal/watchdog"
	"pamigo/mpi"
	"pamigo/pami"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table2|table3|fig5|fig6|fig7|fig8|fig9|fig10|all")
	verify := flag.Bool("verify", false, "cross-check the closed-form model against the packet-level DES (table3)")
	engine := flag.String("engine", "seq", "DES backend for -verify: seq (sequential oracle) or warp (optimistic parallel)")
	lps := flag.Int("lps", 1, "logical processes for -engine=warp (torus nodes shard onto LPs)")
	stats := flag.Bool("stats", false, "run the functional machine on the table1/fig5 workloads and print its telemetry counters")
	faults := flag.String("faults", "", "fault plan for a chaos shakedown of the functional machine (empty = off)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for deterministic fault decisions")
	deadline := flag.Duration("deadline", 0, "abort with a goroutine dump if the run exceeds this duration (0 = off)")
	hangDump := flag.Bool("hang-dump", false, "install a SIGQUIT handler that prints the stall-sentinel wait-site table plus a goroutine dump and keeps running")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	stop := watchdog.Start(*deadline, "paperbench")
	defer stop()
	if *hangDump {
		watchdog.InstallHangDump("paperbench")
	}

	stopProfiles, err := profiles.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatalf("paperbench: %v", err)
	}
	defer stopProfiles()

	if *faults != "" {
		chaosShakedown(*faults, *faultSeed)
		return
	}
	if *verify {
		verifyAgainstDES(*engine, *lps)
		return
	}
	if *stats {
		functionalStats()
		return
	}

	p := model.Default()
	experiments := map[string]func(){
		"table1": func() {
			fmt.Print(bench.RenderTable(model.Table1(p)))
			fmt.Println("paper: SendImmediate 1.18us, Send 1.32us")
		},
		"table2": func() {
			fmt.Print(bench.RenderTable(model.Table2(p)))
			fmt.Println("paper: 1.95 / 2.28->8.7 / 2.5 / 2.96->3.25 us")
		},
		"table3": func() {
			fmt.Print(bench.RenderTable(model.Table3(p)))
			fmt.Println("paper: eager 3267/3360/6676/8467, rendezvous 3333/6625/13139/32355 MB/s")
		},
		"fig5": func() {
			fmt.Print(bench.RenderSeries("FIGURE 5. PAMI and MPI message rate (MMPS) on 32 nodes", model.Fig5(p)))
			fmt.Println("paper: PAMI 107 MMPS @PPN=32; MPI 22.9 MMPS @PPN=32; commthreads 2.4x @PPN=1, best 18.7 MMPS @PPN=16")
		},
		"fig6": func() {
			fmt.Print(bench.RenderSeries("FIGURE 6. MPI_Barrier latency (us)", model.Fig6(p)))
			fmt.Println("paper @2048 nodes: 2.7us (PPN=1), 4.0us (PPN=4), 4.2us (PPN=16)")
		},
		"fig7": func() {
			fmt.Print(bench.RenderSeries("FIGURE 7. MPI_Allreduce (MPI_DOUBLE, MPI_SUM, 1 element) latency (us)", model.Fig7(p)))
			fmt.Println("paper @2048 nodes: 5.5us (PPN=1), 5.0us (PPN=4), 5.3us (PPN=16)")
		},
		"fig8": func() {
			fmt.Print(bench.RenderSeries("FIGURE 8. Allreduce throughput on 2048 nodes (MB/s)", model.Fig8(p)))
			fmt.Println("paper peaks: 1704 MB/s @8MB (PPN=1), 1693 @2MB (PPN=4), 1643 @512KB (PPN=16)")
		},
		"fig9": func() {
			fmt.Print(bench.RenderSeries("FIGURE 9. Broadcast throughput via collective network on 2048 nodes (MB/s)", model.Fig9(p)))
			fmt.Println("paper peaks: 1728 MB/s @32MB (PPN=1), 1722 @4MB (PPN=4), 1701 @1MB (PPN=16)")
		},
		"fig10": func() {
			fmt.Print(bench.RenderSeries("FIGURE 10. Multi-color rectangle broadcast throughput on 2048 nodes (MB/s)", model.Fig10(p)))
			fmt.Println("paper: 16.9 GB/s @PPN=1 (94% of the 18 GB/s ten-link peak)")
		},
	}

	order := []string{"table1", "table2", "table3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"}
	name := strings.ToLower(*exp)
	if name == "all" {
		for _, k := range order {
			experiments[k]()
			fmt.Println()
		}
		return
	}
	run, ok := experiments[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q (want one of %s, all)\n",
			*exp, strings.Join(order, ", "))
		os.Exit(2)
	}
	run()
}

// functionalStats reruns two of the paper's workloads on the functional
// machine — the Table 1 ping-pong and the Figure 5 message-rate pattern —
// and prints the telemetry counter totals each run accumulated: sends by
// protocol, MU packets, reception-FIFO high-water marks, MPI matching
// work. This is the observability view of the experiments; the model
// (default mode) reports their paper-scale timings.
func functionalStats() {
	hrt, ppSnap, err := bench.PingPongPAMI(200, 0, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
	fmt.Printf("TABLE 1 workload (functional run): PAMI SendImmediate ping-pong, 200 iters, hrt %v\n", hrt)
	fmt.Print(ppSnap.RenderTotals())

	fmt.Println()
	rate, mrSnap, err := bench.MessageRateMPI(bench.MessageRateConfig{PPN: 2, Window: 200, Reps: 3})
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
	fmt.Printf("FIGURE 5 workload (functional run): MPI message rate, PPN=2, %.3f MMPS\n", rate)
	fmt.Print(mrSnap.RenderTotals())
}

// newDESEngine builds the packet-level simulation backend selected on
// the command line: the sequential oracle or the optimistic Time Warp
// engine with the requested LP count.
func newDESEngine(engine string, lps int) des.Engine {
	switch engine {
	case "seq":
		return des.NewSeq(lps)
	case "warp":
		return warp.New(lps, warp.Options{})
	default:
		fmt.Fprintf(os.Stderr, "paperbench: unknown -engine %q (want seq or warp)\n", engine)
		os.Exit(2)
		return nil
	}
}

// verifyAgainstDES derives Table 3's rendezvous column a second way —
// packet-level discrete-event simulation over contended links — and
// prints it next to the closed-form model and the paper. With
// -engine=warp the simulation runs on the optimistic parallel backend
// and every row is additionally cross-checked against a fresh run of
// the sequential oracle: any divergence aborts.
func verifyAgainstDES(engine string, lps int) {
	p := model.Default()
	np := netsim.DefaultParams()
	dims := torus.Dims{3, 3, 3, 3, 3}
	paper := map[int]float64{1: 3333, 2: 6625, 4: 13139, 10: 32355}
	fmt.Printf("Table 3 rendezvous column: paper vs closed-form model vs packet-level DES (MB/s, engine=%s lps=%d)\n", engine, lps)
	fmt.Printf("%10s %10s %10s %10s\n", "neighbors", "paper", "model", "DES")
	for _, nb := range []int{1, 2, 4, 10} {
		_, rdv := model.Table3Throughput(p, nb)
		des, err := netsim.NeighborExchangeOn(newDESEngine(engine, lps), dims, np, nb, 1<<20, 2)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		if engine != "seq" {
			oracle, err := netsim.NeighborExchange(dims, np, nb, 1<<20, 2)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
				os.Exit(1)
			}
			if des != oracle {
				fmt.Fprintf(os.Stderr, "paperbench: %s engine diverged from sequential oracle at neighbors=%d: %.6f vs %.6f MB/s\n",
					engine, nb, des, oracle)
				os.Exit(1)
			}
		}
		fmt.Printf("%10d %10.0f %10.0f %10.0f\n", nb, paper[nb], rdv, des)
	}
	fmt.Println("(the DES has no software-gap loss, so it sits a few percent above the model)")

	cp := netsim.DefaultCollectiveParams()
	fmt.Println()
	fmt.Println("Figure 7 (8B allreduce latency, PPN=1): model vs collective-tree DES (us)")
	fmt.Printf("%10s %10s %10s\n", "nodes", "model", "DES")
	for _, nodes := range model.FigNodeCounts {
		des, err := netsim.AllreduceLatency(model.ShapeFor(nodes), cp, 8)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		fmt.Printf("%10d %10.2f %10.2f\n", nodes, model.Fig7Allreduce(p, nodes, 1)/1000, des.Micros())
	}
	fmt.Println("(the DES walks the real classroute spanning tree; paper anchor: 5.5us at 2048 nodes)")
}

// chaosShakedown boots the functional machine with the given fault plan
// armed, drives byte-verified point-to-point and collective traffic
// through the faulty fabric, and prints the reliability counters. A
// non-zero exit means the exactly-once guarantee broke.
func chaosShakedown(planStr string, seed int64) {
	plan, err := fault.ParsePlan(planStr)
	if err != nil {
		log.Fatalf("paperbench: %v", err)
	}
	dims := torus.Dims{2, 2, 1, 1, 1}
	if err := plan.Validate(dims); err != nil {
		log.Fatalf("paperbench: %v", err)
	}
	const ppn = 2
	m, err := pami.NewMachine(machine.Config{Dims: dims, PPN: ppn, Faults: &plan, FaultSeed: seed})
	if err != nil {
		log.Fatalf("paperbench: %v", err)
	}
	fmt.Printf("chaos shakedown: %s torus, PPN=%d, plan %s, seed %d\n", dims, ppn, &plan, seed)

	const rounds = 20
	m.Run(func(p *pami.Process) {
		w, err := mpi.Init(m, p, mpi.Options{})
		if err != nil {
			log.Fatalf("rank %d: %v", p.TaskRank(), err)
		}
		defer w.Finalize()
		cw := w.CommWorld()
		next := (w.Rank() + 1) % w.Size()
		prev := (w.Rank() - 1 + w.Size()) % w.Size()
		for r := 0; r < rounds; r++ {
			// Eager-size and rendezvous-size ring exchanges, byte-verified.
			for _, size := range []int{200, 16 << 10} {
				out := make([]byte, size)
				for i := range out {
					out[i] = byte(i + w.Rank() + r)
				}
				in := make([]byte, size)
				if _, err := cw.SendRecv(out, next, 1, in, prev, 1); err != nil {
					log.Fatalf("rank %d round %d sendrecv: %v", w.Rank(), r, err)
				}
				for i := range in {
					if in[i] != byte(i+prev+r) {
						log.Fatalf("rank %d round %d: byte %d corrupted (%#x != %#x)",
							w.Rank(), r, i, in[i], byte(i+prev+r))
					}
				}
			}
			sum, err := cw.AllreduceFloat64([]float64{float64(w.Rank())}, collnet.OpAdd)
			if err != nil {
				log.Fatalf("rank %d round %d allreduce: %v", w.Rank(), r, err)
			}
			if want := float64(w.Size()*(w.Size()-1)) / 2; sum[0] != want {
				log.Fatalf("rank %d round %d: allreduce %v, want %v", w.Rank(), r, sum[0], want)
			}
			cw.Barrier()
		}
	})
	m.Shutdown()

	snap := m.Telemetry().Snapshot()
	get := func(name string) int64 {
		v, _ := snap.Counter(name)
		return v
	}
	fmt.Printf("all %d rounds byte-exact on every rank\n", rounds)
	fmt.Printf("reliability: %d retransmits, %d corrupt drops, %d dup drops, %d nacks, %d backoff-ns\n",
		get("mu.reliable.retransmits"), get("mu.reliable.corrupt_drops"),
		get("mu.reliable.dup_drops"), get("mu.reliable.nacks_sent"), get("mu.reliable.backoff_ns"))
	fmt.Printf("faults: %d drops, %d delays, %d links down, %d classroute rebuilds, %d reroutes\n",
		get("mu.reliable.drops_injected"), get("mu.reliable.delays_injected"),
		get("collnet.links_down"), get("collnet.classroute_rebuilds"), get("mu.reliable.reroutes"))
}
