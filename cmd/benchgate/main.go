// Command benchgate compares `go test -bench -benchmem` output against
// the checked-in BENCH_BASELINE.json and fails when the hot paths
// regress: more than the allowed ns/op slowdown, or *any* increase in
// allocs/op on the benchmarks marked zero-alloc. It is the regression
// gate scripts/check.sh runs after the functional checks.
//
// Usage:
//
//	go test -bench '...' -benchmem -run xxx | go run ./cmd/benchgate
//	go run ./cmd/benchgate -in bench.out            # parse a saved run
//	go run ./cmd/benchgate -in bench.out -update    # rewrite the baseline
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Baseline is the schema of BENCH_BASELINE.json.
type Baseline struct {
	// Note documents how the numbers were captured.
	Note string `json:"note"`
	// TolerancePct is the allowed ns/op slowdown before the gate fails.
	TolerancePct float64 `json:"tolerance_pct"`
	// Benchmarks maps the benchmark name (without the -N GOMAXPROCS
	// suffix) to its recorded figures.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Entry is one benchmark's recorded figures.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// ZeroAlloc marks the zero-allocation set: any allocs/op at all fails
	// the gate, independent of what the recorded baseline says.
	ZeroAlloc bool `json:"zero_alloc,omitempty"`
	// SpeedupVs names a reference benchmark in the same run; the gate then
	// also tracks the ratio reference-ns/op over this-ns/op (the speedup
	// of this benchmark relative to the reference) and fails when it
	// drops below the recorded Speedup by more than the tolerance.
	// Ratios are robust where absolute ns/op gates are not: both sides
	// move together when the machine changes.
	SpeedupVs string `json:"speedup_vs,omitempty"`
	// Speedup is the recorded reference ratio for SpeedupVs entries.
	Speedup float64 `json:"speedup,omitempty"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "baseline file to compare against")
	inPath := flag.String("in", "-", "benchmark output to parse (- for stdin)")
	update := flag.Bool("update", false, "rewrite the baseline from the parsed run instead of gating")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	got, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(got) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *update {
		if err := writeBaseline(*baselinePath, got); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(got), *baselinePath)
		return
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	if gate(base, got) {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}

// parse extracts Benchmark lines from `go test -bench` output. A line
// looks like:
//
//	BenchmarkName-8   123456   1415 ns/op   2.0 pkts/op   0 B/op   0 allocs/op
//
// Custom metrics are ignored; ns/op, B/op and allocs/op are kept. With
// -count=N the same benchmark appears N times; parse keeps the *minimum*
// ns/op (best-of-N filters scheduler noise, the standard practice for
// wall-clock gates) and the *maximum* allocs/op and B/op (an allocation
// on any run is a real allocation on the code path).
func parse(r io.Reader) (map[string]Entry, error) {
	out := make(map[string]Entry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := trimProcSuffix(fields[0])
		e, seen := Entry{AllocsPerOp: -1, BytesPerOp: -1}, false
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
				}
				e.NsPerOp, seen = v, true
			case "B/op":
				v, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad B/op in %q: %v", sc.Text(), err)
				}
				e.BytesPerOp = v
			case "allocs/op":
				v, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad allocs/op in %q: %v", sc.Text(), err)
				}
				e.AllocsPerOp = v
			}
		}
		if !seen {
			continue
		}
		if prev, ok := out[name]; ok {
			if prev.NsPerOp < e.NsPerOp {
				e.NsPerOp = prev.NsPerOp
			}
			if prev.AllocsPerOp > e.AllocsPerOp {
				e.AllocsPerOp = prev.AllocsPerOp
			}
			if prev.BytesPerOp > e.BytesPerOp {
				e.BytesPerOp = prev.BytesPerOp
			}
		}
		out[name] = e
	}
	return out, sc.Err()
}

// trimProcSuffix strips the -N GOMAXPROCS suffix go test appends.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func readBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if b.TolerancePct <= 0 {
		b.TolerancePct = 10
	}
	return &b, nil
}

func writeBaseline(path string, got map[string]Entry) error {
	b := Baseline{
		Note:         "Recorded by `go run ./cmd/benchgate -update`; see scripts/check.sh for the capture invocation.",
		TolerancePct: 10,
		Benchmarks:   got,
	}
	// Preserve zero_alloc marks and speedup_vs links across -update runs;
	// the recorded speedup itself is recomputed from the new numbers.
	if old, err := readBaseline(path); err == nil {
		for name, e := range b.Benchmarks {
			oe, ok := old.Benchmarks[name]
			if !ok {
				continue
			}
			e.ZeroAlloc = oe.ZeroAlloc
			if oe.SpeedupVs != "" {
				e.SpeedupVs = oe.SpeedupVs
				if ref, ok := got[oe.SpeedupVs]; ok && e.NsPerOp > 0 {
					e.Speedup = ref.NsPerOp / e.NsPerOp
				}
			}
			b.Benchmarks[name] = e
		}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// gate compares a run against the baseline and reports every violation;
// it returns true when the gate fails.
func gate(base *Baseline, got map[string]Entry) bool {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		want := base.Benchmarks[name]
		have, ok := got[name]
		if !ok {
			fmt.Printf("MISS %s: benchmark not in this run\n", name)
			failed = true
			continue
		}
		limit := want.NsPerOp * (1 + base.TolerancePct/100)
		switch {
		case have.NsPerOp > limit:
			fmt.Printf("FAIL %s: %.0f ns/op exceeds baseline %.0f ns/op by more than %.0f%%\n",
				name, have.NsPerOp, want.NsPerOp, base.TolerancePct)
			failed = true
		case have.AllocsPerOp < 0:
			fmt.Printf("MISS %s: run lacks allocs/op (pass -benchmem)\n", name)
			failed = true
		case want.ZeroAlloc && have.AllocsPerOp != 0:
			fmt.Printf("FAIL %s: %d allocs/op on a zero-alloc benchmark\n", name, have.AllocsPerOp)
			failed = true
		case have.AllocsPerOp > want.AllocsPerOp+want.AllocsPerOp/100:
			// Non-zero-alloc benchmarks get 1% slack: parallel engines
			// (the warp benches) allocate nondeterministically with
			// scheduling, and a ±few-in-tens-of-thousands wobble must not
			// fail the gate. A real per-op leak is orders above 1%.
			fmt.Printf("FAIL %s: allocs/op rose %d -> %d (baseline %d +1%%)\n",
				name, want.AllocsPerOp, have.AllocsPerOp, want.AllocsPerOp)
			failed = true
		default:
			fmt.Printf("ok   %s: %.0f ns/op (baseline %.0f, +%.0f%% allowed), %d allocs/op\n",
				name, have.NsPerOp, want.NsPerOp, base.TolerancePct, have.AllocsPerOp)
		}
		if want.SpeedupVs != "" && want.Speedup > 0 {
			ref, ok := got[want.SpeedupVs]
			switch floor := want.Speedup * (1 - base.TolerancePct/100); {
			case !ok:
				fmt.Printf("MISS %s: speedup reference %s not in this run\n", name, want.SpeedupVs)
				failed = true
			case have.NsPerOp <= 0:
				fmt.Printf("MISS %s: no ns/op for speedup check\n", name)
				failed = true
			case ref.NsPerOp/have.NsPerOp < floor:
				fmt.Printf("FAIL %s: speedup vs %s fell to %.3fx, baseline %.3fx (floor %.3fx)\n",
					name, want.SpeedupVs, ref.NsPerOp/have.NsPerOp, want.Speedup, floor)
				failed = true
			default:
				fmt.Printf("ok   %s: speedup vs %s %.3fx (baseline %.3fx, floor %.3fx)\n",
					name, want.SpeedupVs, ref.NsPerOp/have.NsPerOp, want.Speedup, floor)
			}
		}
	}
	if failed {
		fmt.Println("benchgate: performance regression detected")
	} else {
		printDeltaTable(base, got, names)
	}
	return failed
}

// printDeltaTable summarizes a passing run: where every gated benchmark
// landed relative to its recorded baseline, in one aligned table.
// Negative deltas are improvements. The per-line ok output above is the
// audit trail; this is the at-a-glance answer to "did anything drift?"
// that otherwise takes a scan of twenty lines to assemble.
func printDeltaTable(base *Baseline, got map[string]Entry, names []string) {
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Println("\nbenchgate: pass — deltas vs baseline (negative = faster)")
	fmt.Fprintln(w, "  benchmark\tbaseline ns/op\trun ns/op\tdelta\tallocs/op")
	for _, name := range names {
		want := base.Benchmarks[name]
		have, ok := got[name]
		if !ok || want.NsPerOp <= 0 {
			continue
		}
		delta := (have.NsPerOp - want.NsPerOp) / want.NsPerOp * 100
		fmt.Fprintf(w, "  %s\t%.0f\t%.0f\t%+.1f%%\t%d\n",
			name, want.NsPerOp, have.NsPerOp, delta, have.AllocsPerOp)
	}
	w.Flush()
}
